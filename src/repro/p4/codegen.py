"""Codegen execution engine: a P4 program compiled to generated source.

The fast engine (:mod:`repro.p4.fastpath`) lowers the IR to nested
Python closures — every statement still costs at least one indirect
call per packet.  This module goes one step further: it emits one
straight-line Python function per pipeline, ``compile()``s the source,
and ``exec``s it, so the whole parse → ingress → egress → deparse walk
runs in a single stack frame with flat local variables:

* **Metadata and standard metadata** become locals (``m3_counter``,
  ``sm_egress_spec``) instead of dict/attribute accesses.
* **Header fields** read and write through hoisted ``values`` dict
  locals; validity checks are plain attribute loads.
* **Tables** reuse the fast engine's :class:`_TableIndex`, but the
  bound payload is ``(action_id, args)`` and the action body is inlined
  at every apply site behind an ``if action_id == …`` dispatch that is
  specialized to the actions this program (plus any runtime-installed
  entries) can dispatch to.  Exact-match lookups inline the index's
  hash probe directly.
* **The pipelines are SSA-optimized first** (:mod:`repro.p4.ssa`) with
  the switch's *runtime* default actions as known facts, so dead
  branches and copy chains vanish from the generated source.
* A **batch entry point** (``_process_batch``) runs the same body
  inside a single loop so replay and the bench harness amortize the
  per-packet dispatch layers.

Observability is a compile-time specialization exactly like the fast
engine's: with the null handle the generated source carries zero
instrumentation; with a live handle the apply/digest sites emit
counters and trace events and ``process`` is swapped for the metered
wrapper.

Control-plane interplay: the generated dispatch assumes a fixed action
set per table and bakes the SSA facts derived from the defaults at
build time.  ``Bmv2Switch`` notifies the engine on entry inserts and
default-action changes; the engine recompiles when an assumption no
longer covers the installed state.  Externs receive a full
:class:`~repro.p4.fastpath._FastContext` built from the flat locals and
synced back afterwards (externs may mutate fields and rebind headers;
adding *new* bind names from an extern is not supported by any engine's
deparse contract and is not resynced here).
"""

from __future__ import annotations

import copy
import re
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..net.packet import Header, Packet
from ..obs.profile import profiled
from . import ir
from .bmv2 import (DROP_PORT, DigestMessage, P4RuntimeError, StandardMetadata,
                   drop_reason)
from .fastpath import _FastContext, _TableIndex, _writable_binds

__all__ = ["CodegenEngine"]

#: StandardMetadata fields tracked as flat locals.
_STD_FIELDS = ("ingress_port", "egress_spec", "egress_port",
               "packet_length", "drop")

#: Probe instance for faithfully raising AttributeError on reads of
#: std-metadata fields that do not exist (matching the interpreter's
#: ``getattr(ctx.standard, rest)``).
_STD0 = StandardMetadata()

#: Sentinel marking a dynamically-created std-metadata attribute that
#: has not been written yet this packet.
_UNSET = object()


# ---------------------------------------------------------------------------
# Runtime helpers referenced from generated source (via globals)
# ---------------------------------------------------------------------------

def _raise_p4(message: str) -> None:
    raise P4RuntimeError(message)


def _raise_key(key: str) -> None:
    raise KeyError(key)


def _div(left: int, right: int, mask: int) -> int:
    return (left // right) & mask if right else 0


def _mod(left: int, right: int, mask: int) -> int:
    return (left % right) & mask if right else 0


def _absdiff(left: int, right: int, mask: int) -> int:
    diff = (left - right) & mask
    return min(diff, (-diff) & mask)


def _blank(htype, template) -> Header:
    header = Header.__new__(Header)
    object.__setattr__(header, "htype", htype)
    object.__setattr__(header, "values", dict(template))
    object.__setattr__(header, "valid", False)
    return header


def _pop_sr(hdrs: Dict[str, Header]) -> None:
    """PopSourceRoute over the srcRoute* slice of the bind map (same
    shift-down semantics as :func:`repro.p4.bmv2._pop_source_route`)."""
    binds = sorted(
        (b for b in hdrs if b.startswith("srcRoute") and
         b[len("srcRoute"):].isdigit()),
        key=lambda b: int(b[len("srcRoute"):]),
    )
    valid = [b for b in binds if hdrs[b].valid]
    if not valid:
        return
    for i in range(len(valid) - 1):
        hdrs[valid[i]].values.update(hdrs[valid[i + 1]].values)
    hdrs[valid[-1]].valid = False


def _sanitize(name: str) -> str:
    return re.sub(r"\W", "_", name)


class _Actx:
    """Emission context for one lexical action scope.

    ``params`` maps parameter names to source expressions; ``args_expr``
    is the source expression for the live ``action_args`` dict handed
    to externs (None when the scope provably contains no extern).
    """

    __slots__ = ("params", "args_expr")

    def __init__(self, params: Dict[str, str], args_expr: Optional[str]):
        self.params = params
        self.args_expr = args_expr


_TOP = _Actx({}, None)


class CodegenEngine:
    """One program compiled to generated Python source, for one switch.

    Duck-type compatible with :class:`~repro.p4.fastpath.FastPath` where
    ``Bmv2Switch`` touches it: ``process``, ``invalidate_table``, plus
    the extra ``process_batch``, ``on_default_change`` and ``source``.
    """

    def __init__(self, program: ir.P4Program, switch):
        self.program = program
        self.switch = switch
        self._obs = switch.obs
        self._instrumented = self._obs.live
        self._action_ids: Dict[str, int] = {
            name: i for i, name in enumerate(program.actions)
        }
        self._meta_width: Dict[str, int] = dict(program.metadata)
        self._bind_types = program.bind_types()
        self.source: str = ""
        self.recompiles = -1  # first build brings it to 0
        self._build()

    # ==================================================================
    # Control-plane hooks
    # ==================================================================

    def invalidate_table(self, name: str) -> None:
        index = self.tables.get(name)
        if index is not None:
            index.invalidate()
        assumed = self._assumed.get(name)
        if assumed is not None and any(
                entry.action not in assumed
                for entry in self.switch.entries.get(name, ())):
            self._build()

    def entries_inserted(self, name: str, new_entries) -> None:
        """Bulk-insert hook: fold appended entries into the live index.

        An entry whose action the specialized source did not assume
        still forces a recompile (same rule as :meth:`invalidate_table`,
        but checking only the new entries instead of rescanning the
        whole table).
        """
        assumed = self._assumed.get(name)
        if assumed is not None and any(
                entry.action not in assumed for entry in new_entries):
            self._build()
            return
        index = self.tables.get(name)
        if index is not None and not index.fold_inserts(new_entries):
            index.invalidate()

    def entries_removed(self, name: str, removed) -> None:
        """Bulk-delete hook: deletions never widen the assumed action
        set, so only the table index needs maintenance."""
        index = self.tables.get(name)
        if index is not None and not index.fold_deletes(removed):
            index.invalidate()

    def on_default_change(self, name: str) -> None:
        current = self.switch.default_actions.get(name)
        if current is not None:
            current = (current[0], tuple(current[1]))
        if current == self._defaults_snapshot.get(name):
            return
        self._build()

    def _bind_action(self, name: str, args: Sequence[int]) -> Tuple:
        """The _TableIndex payload: a (action_id, args) pair consumed by
        the generated per-site dispatch."""
        return (self._action_ids.get(name, -1), tuple(args))

    # ==================================================================
    # Build
    # ==================================================================

    def _build(self) -> None:
        self.recompiles += 1
        with profiled(self.switch.obs.registry, "codegen"):
            ingress, egress = self._specialize()
            self._globals: Dict[str, Any] = {}
            self.tables: Dict[str, _TableIndex] = {}
            self._table_globals: Dict[str, str] = {}
            self._hoisted: Set[str] = set()
            self.source = self._emit_module(ingress, egress)
            code = compile(self.source,
                           f"<codegen:{self.program.name}>", "exec")
            exec(code, self._globals)
            self._run = self._globals["_process"]
            self._run_batch = self._globals["_process_batch"]
        if self._instrumented:
            self.process = self._process_obs
            self.process_batch = self._process_batch_obs
        else:
            self.process = self._run
            self.process_batch = self._run_batch

    def _specialize(self) -> Tuple[List[ir.P4Stmt], List[ir.P4Stmt]]:
        """SSA-optimize private copies of the pipelines under the
        switch's live control-plane state (runtime defaults + any
        installed entries whose actions go beyond the declaration)."""
        from .ssa import optimize_pipeline
        program = self.program
        switch = self.switch
        self._assumed = {}
        tables = dict(program.tables)
        for name, table in program.tables.items():
            base = (list(table.actions) if table.actions
                    else list(program.actions))
            extra = []
            for entry in switch.entries.get(name, ()):
                if entry.action not in base and entry.action not in extra:
                    extra.append(entry.action)
            default = switch.default_actions.get(name)
            if (default is not None and default[0] not in base
                    and default[0] not in extra):
                extra.append(default[0])
            self._assumed[name] = set(base) | set(extra)
            if extra and table.actions:
                tables[name] = ir.Table(
                    name=table.name, keys=table.keys,
                    actions=list(table.actions) + extra,
                    default_action=table.default_action, size=table.size)
        self._defaults_snapshot = {
            name: (None if value is None else (value[0], tuple(value[1])))
            for name, value in switch.default_actions.items()
        }
        clone = ir.P4Program(
            name=program.name, parser=program.parser,
            metadata=list(program.metadata), registers=program.registers,
            actions=program.actions, tables=tables,
            ingress=copy.deepcopy(program.ingress),
            egress=copy.deepcopy(program.egress),
            emit_order=program.emit_order)
        self.ssa_counts = optimize_pipeline(
            clone, defaults=dict(switch.default_actions))
        return clone.ingress, clone.egress

    # ==================================================================
    # Source emission
    # ==================================================================

    def _g(self, name: str, value: Any) -> str:
        """Register a value under ``name`` in the exec globals."""
        if name not in self._globals:
            self._globals[name] = value
        return name

    def _table_global(self, name: str) -> Tuple[str, _TableIndex]:
        gname = self._table_globals.get(name)
        if gname is None:
            index = _TableIndex(self, name, self.program.tables[name])
            self.tables[name] = index
            gname = self._g(f"T{len(self._table_globals)}_{_sanitize(name)}",
                            index)
            self._table_globals[name] = gname
        return gname, self.tables[name]

    def _emit_module(self, ingress: List[ir.P4Stmt],
                     egress: List[ir.P4Stmt]) -> str:
        program = self.program
        switch = self.switch
        # Stable name maps (index-based: collision-free, readable).
        self._meta_names = {
            name: f"m{i}_{_sanitize(name)}"
            for i, (name, _) in enumerate(program.metadata)
        }
        self._bind_names = {
            bind: f"h{i}_{_sanitize(bind)}"
            for i, bind in enumerate(self._bind_types)
        }
        self._vals_names = {
            bind: f"hv{i}_{_sanitize(bind)}"
            for i, bind in enumerate(self._bind_types)
        }
        self._reg_names = {}
        for i, reg in enumerate(program.registers):
            gname = self._g(f"RG{i}_{_sanitize(reg.name)}",
                            switch.registers[reg.name])
            self._reg_names[reg.name] = gname
        # Baseline globals.
        self._g("SW", switch)
        self._g("PROG", program)
        self._g("MW", self._meta_width)
        self._g("_SM", StandardMetadata)
        self._g("_CTX", _FastContext)
        self._g("_DM", DigestMessage)
        self._g("_os", object.__setattr__)
        self._g("_blank", _blank)
        self._g("_pop_sr", _pop_sr)
        self._g("_raise_p4", _raise_p4)
        self._g("_raise_key", _raise_key)
        self._g("_div", _div)
        self._g("_mod", _mod)
        self._g("_absdiff", _absdiff)
        self._g("_STD0", _STD0)
        self._g("_UNSET", _UNSET)
        if self._instrumented:
            self._g("TR", self._obs.tracer)
        # Usage scans over pipelines + every program action (superset of
        # anything the dispatch can inline).
        bodies = [ingress, egress]
        bodies.extend(action.body for action in program.actions.values())
        all_stmts = [s for body in bodies for s in ir.walk_stmts(body)]
        self._has_extern = any(isinstance(s, ir.ExternCall) and s.fn is not None
                               for s in all_stmts)
        self._top_extern = any(
            isinstance(s, ir.ExternCall) and s.fn is not None
            for body in (ingress, egress) for s in ir.walk_stmts(body))
        self._used_meta = self._scan_meta(all_stmts)
        self._hoisted = self._scan_hdr_binds(all_stmts)
        self._dyn_std = self._scan_dyn_std(all_stmts)
        self._writable = _writable_binds(program, self._bind_types)
        # Per-bind copy-on-extract: when the program provably mutates
        # only a known set of binds (no raw extern context access, no
        # source-route pop rewriting headers in place), the packet shell
        # is cloned with copy_shared() and only writable binds are
        # copied at their extraction site — untouched headers ride
        # through shared, like the fast engine's whole-packet sharing
        # but per header.
        has_pop = any(isinstance(s, ir.PopSourceRoute) for s in all_stmts)
        self._cow = (not switch._share_headers and not self._has_extern
                     and not has_pop)
        # packet_length is only materialized when something touches it.
        all_paths = [p for s in all_stmts for p in self._paths_of(s)]
        for state in program.parser.states:
            for tr in state.transitions:
                if tr.field_path is not None:
                    all_paths.append(tr.field_path)
        self._needs_length = (self._has_extern or
                              "standard_metadata.packet_length" in all_paths)

        lines: List[str] = [
            f"# generated by repro.p4.codegen for program "
            f"{program.name!r} (switch {switch.name!r})",
            "",
            "def _process(packet, ingress_port):",
        ]
        self._site = 0
        self._emit_pipeline(lines, 1, False, ingress, egress)
        lines.append("")
        lines.append("")
        lines.append("def _process_batch(items):")
        lines.append("    _results = []")
        lines.append("    _append = _results.append")
        lines.append("    for packet, ingress_port in items:")
        self._site = 0
        self._emit_pipeline(lines, 2, True, ingress, egress)
        lines.append("    return _results")
        lines.append("")
        return "\n".join(lines)

    # -- usage scans ---------------------------------------------------------

    def _paths_of(self, stmt: ir.P4Stmt) -> List[str]:
        paths: List[str] = []
        exprs: List[ir.P4Expr] = []
        if isinstance(stmt, ir.AssignStmt):
            paths.append(stmt.dest)
            exprs.append(stmt.value)
        elif isinstance(stmt, ir.IfStmt):
            exprs.append(stmt.cond)
        elif isinstance(stmt, ir.RegisterRead):
            paths.append(stmt.dest)
            exprs.append(stmt.index)
        elif isinstance(stmt, ir.RegisterWrite):
            exprs.extend((stmt.index, stmt.value))
        elif isinstance(stmt, ir.Digest):
            exprs.extend(stmt.fields)
        elif isinstance(stmt, ir.ApplyTable):
            table = self.program.tables.get(stmt.table)
            if table is not None:
                paths.extend(k.path for k in table.keys)
        for expr in exprs:
            for sub in ir.walk_exprs(expr):
                if isinstance(sub, ir.FieldRef):
                    paths.append(sub.path)
        return paths

    def _scan_meta(self, stmts: Sequence[ir.P4Stmt]) -> Set[str]:
        if self._has_extern:
            return set(self._meta_width)  # extern sync needs the full dict
        used: Set[str] = set()
        paths = [p for s in stmts for p in self._paths_of(s)]
        for state in self.program.parser.states:
            for tr in state.transitions:
                if tr.field_path is not None:
                    paths.append(tr.field_path)
        for path in paths:
            root, _, rest = path.partition(".")
            if root == "meta" and rest in self._meta_width:
                used.add(rest)
        return used

    def _scan_hdr_binds(self, stmts: Sequence[ir.P4Stmt]) -> Set[str]:
        """Binds whose values dict gets a hoisted local (field access
        outside the parser)."""
        binds: Set[str] = set()
        for stmt in stmts:
            for path in self._paths_of(stmt):
                root, _, rest = path.partition(".")
                if root == "hdr":
                    bind = rest.partition(".")[0]
                    if bind in self._bind_types:
                        binds.add(bind)
        return binds

    def _scan_dyn_std(self, stmts: Sequence[ir.P4Stmt]) -> Set[str]:
        """Std-metadata fields outside the dataclass that the program
        *writes* (the interpreter's setattr creates them dynamically)."""
        written: Set[str] = set()
        for stmt in stmts:
            dest = getattr(stmt, "dest", None)
            if isinstance(stmt, (ir.AssignStmt, ir.RegisterRead)) and dest:
                root, _, rest = dest.partition(".")
                if root == "standard_metadata" and rest not in _STD_FIELDS:
                    written.add(rest)
        return written

    # -- pipeline body -------------------------------------------------------

    def _emit_pipeline(self, lines: List[str], ind: int, batch: bool,
                       ingress: List[ir.P4Stmt],
                       egress: List[ir.P4Stmt]) -> None:
        pad = "    " * ind
        emit = lines.append
        drop_exit = ("_append([])" + "; continue") if batch else "return []"
        emit(f"{pad}SW.packets_processed += 1")
        copy_call = ("packet.copy_shared()"
                     if self.switch._share_headers or self._cow
                     else "packet.copy()")
        emit(f"{pad}work = {copy_call}")
        emit(f"{pad}sm_ingress_port = ingress_port")
        emit(f"{pad}sm_egress_spec = 0")
        emit(f"{pad}sm_egress_port = 0")
        if self._needs_length:
            emit(f"{pad}sm_packet_length = work.length")
        emit(f"{pad}sm_drop = False")
        for name in self._dyn_std:
            emit(f"{pad}sx_{_sanitize(name)} = _UNSET")
        for name in self._meta_names:
            if name in self._used_meta:
                emit(f"{pad}{self._meta_names[name]} = 0")
        if self._top_extern:
            emit(f"{pad}_pa0 = {{}}")
        self._emit_parser(lines, ind)
        for bind in self._bind_types:
            if bind in self._hoisted:
                emit(f"{pad}{self._vals_names[bind]} = "
                     f"{self._bind_names[bind]}.values")
        self._emit_body(ingress, lines, ind, _TOP)
        emit(f"{pad}if sm_drop or sm_egress_spec == {DROP_PORT}:")
        emit(f"{pad}    SW.packets_dropped += 1")
        emit(f"{pad}    {drop_exit}")
        emit(f"{pad}sm_egress_port = sm_egress_spec")
        self._emit_body(egress, lines, ind, _TOP)
        emit(f"{pad}if sm_drop:")
        emit(f"{pad}    SW.packets_dropped += 1")
        emit(f"{pad}    {drop_exit}")
        emit(f"{pad}_emit = []")
        order = self.program.emit_order or list(self._bind_types)
        for bind in order:
            local = self._bind_names.get(bind)
            if local is None:
                continue  # emit_order naming a bind the parser never makes
            emit(f"{pad}if {local}.valid:")
            emit(f"{pad}    _emit.append({local})")
        emit(f"{pad}_emit.extend(_tail)")
        emit(f"{pad}work.headers = _emit")
        if batch:
            emit(f"{pad}_append([(sm_egress_port, work)])")
        else:
            emit(f"{pad}return [(sm_egress_port, work)]")

    # -- parser --------------------------------------------------------------

    def _emit_parser(self, lines: List[str], ind: int) -> None:
        pad = "    " * ind
        emit = lines.append
        parser = self.program.parser
        writable = self._writable
        for i, (bind, htype) in enumerate(self._bind_types.items()):
            local = self._bind_names[bind]
            template = {f.name: 0 for f in htype.fields}
            ht = self._g(f"HT{i}_{_sanitize(bind)}", htype)
            if bind in writable:
                tpl = self._g(f"TPL{i}_{_sanitize(bind)}", template)
                emit(f"{pad}{local} = _blank({ht}, {tpl})")
            else:
                shared = self._g(f"SH{i}_{_sanitize(bind)}",
                                 _blank(htype, template))
                emit(f"{pad}{local} = {shared}")
        emit(f"{pad}_hdrs = work.headers")
        emit(f"{pad}_nh = len(_hdrs)")
        emit(f"{pad}_cur = 0")
        states = {state.name: i for i, state in enumerate(parser.states)}
        start = parser.start
        if start in (ir.ACCEPT, ir.REJECT_STATE):
            emit(f"{pad}_tail = _hdrs[_cur:]")
            return
        if start not in states:
            emit(f"{pad}_raise_key({('no parser state ' + repr(start))!r})")
            emit(f"{pad}_tail = _hdrs[_cur:]")
            return
        emit(f"{pad}_st = {states[start]}")
        emit(f"{pad}_guard = 0")
        emit(f"{pad}while True:")
        body = "    " * (ind + 1)
        emit(f"{body}_guard += 1")
        emit(f"{body}if _guard > 64:")
        emit(f"{body}    _raise_p4('parser did not terminate')")
        for idx, state in enumerate(parser.states):
            kw = "if" if idx == 0 else "elif"
            emit(f"{body}{kw} _st == {states[state.name]}:")
            inner = ind + 2
            self._emit_state(state, states, lines, inner)
        emit(f"{body}else:")
        emit(f"{body}    break")
        emit(f"{pad}_tail = _hdrs[_cur:]")

    def _emit_state(self, state: ir.ParserState, states: Dict[str, int],
                    lines: List[str], ind: int) -> None:
        pad = "    " * ind
        emit = lines.append
        for ex in state.extracts:
            if isinstance(ex, ir.Extract):
                local = self._bind_names[ex.bind]
                ht = self._g(
                    f"HT{list(self._bind_types).index(ex.bind)}_"
                    f"{_sanitize(ex.bind)}", ex.htype)
                emit(f"{pad}if _cur >= _nh or _hdrs[_cur].htype is not {ht}:")
                emit(f"{pad}    break")
                if self._cow and ex.bind in self._writable:
                    emit(f"{pad}{local} = _hdrs[_cur].copy()")
                    emit(f"{pad}_hdrs[_cur] = {local}")
                else:
                    emit(f"{pad}{local} = _hdrs[_cur]")
                emit(f"{pad}_cur += 1")
            else:  # ExtractStack
                slot0 = f"{ex.bind}0"
                ht = self._g(
                    f"HT{list(self._bind_types).index(slot0)}_"
                    f"{_sanitize(slot0)}", ex.htype)
                emit(f"{pad}_depth = 0")
                emit(f"{pad}while _depth < {ex.max_depth} and _cur < _nh "
                     f"and _hdrs[_cur].htype is {ht}:")
                inner = pad + "    "
                emit(f"{inner}_hx = _hdrs[_cur]")
                for depth in range(ex.max_depth):
                    kw = "if" if depth == 0 else "elif"
                    local = self._bind_names[f"{ex.bind}{depth}"]
                    emit(f"{inner}{kw} _depth == {depth}:")
                    if self._cow and f"{ex.bind}{depth}" in self._writable:
                        emit(f"{inner}    {local} = _hx.copy()")
                        emit(f"{inner}    _hdrs[_cur] = {local}")
                    else:
                        emit(f"{inner}    {local} = _hx")
                emit(f"{inner}_stop = _hx.values[{ex.loop_field!r}] != 0")
                emit(f"{inner}_cur += 1")
                emit(f"{inner}_depth += 1")
                emit(f"{inner}if _stop:")
                emit(f"{inner}    break")
        default = ir.ACCEPT
        for tr in state.transitions:
            if tr.field_path is None:
                default = tr.next_state
            else:
                read = self._read(tr.field_path, _TOP, hoisted=False)
                emit(f"{pad}if {read} == {tr.value!r}:")
                self._emit_goto(tr.next_state, states, lines, ind + 1)
        self._emit_goto(default, states, lines, ind)

    def _emit_goto(self, target: str, states: Dict[str, int],
                   lines: List[str], ind: int) -> None:
        pad = "    " * ind
        if target in (ir.ACCEPT, ir.REJECT_STATE):
            lines.append(f"{pad}break")
        elif target in states:
            lines.append(f"{pad}_st = {states[target]}")
            lines.append(f"{pad}continue")
        else:
            lines.append(
                f"{pad}_raise_key({('no parser state ' + repr(target))!r})")

    # -- statements ----------------------------------------------------------

    def _emit_body(self, stmts: Sequence[ir.P4Stmt], lines: List[str],
                   ind: int, actx: _Actx) -> None:
        if not stmts:
            lines.append("    " * ind + "pass")
            return
        for stmt in stmts:
            self._emit_stmt(stmt, lines, ind, actx)

    def _emit_stmt(self, stmt: ir.P4Stmt, lines: List[str], ind: int,
                   actx: _Actx) -> None:
        pad = "    " * ind
        emit = lines.append
        if isinstance(stmt, ir.AssignStmt):
            self._emit_write(stmt.dest, self._expr(stmt.value, actx),
                             lines, ind)
        elif isinstance(stmt, ir.IfStmt):
            emit(f"{pad}if {self._cond(stmt.cond, actx)}:")
            self._emit_body(stmt.then_body, lines, ind + 1, actx)
            if stmt.else_body:
                emit(f"{pad}else:")
                self._emit_body(stmt.else_body, lines, ind + 1, actx)
        elif isinstance(stmt, ir.ApplyTable):
            self._emit_apply(stmt, lines, ind, actx)
        elif isinstance(stmt, ir.RegisterRead):
            emit(f"{pad}_ri = {self._expr(stmt.index, actx)}")
            reg = self._reg_names.get(stmt.register)
            if reg is None:
                emit(f"{pad}_raise_key({stmt.register!r})")
                return
            size = len(self.switch.registers[stmt.register])
            self._emit_write(stmt.dest,
                             f"({reg}[_ri] if 0 <= _ri < {size} else 0)",
                             lines, ind)
        elif isinstance(stmt, ir.RegisterWrite):
            emit(f"{pad}_ri = {self._expr(stmt.index, actx)}")
            reg = self._reg_names.get(stmt.register)
            if reg is None:
                emit(f"{pad}_raise_key({stmt.register!r})")
                return
            size = len(self.switch.registers[stmt.register])
            mask = (1 << self.switch._register_width[stmt.register]) - 1
            emit(f"{pad}if 0 <= _ri < {size}:")
            emit(f"{pad}    {reg}[_ri] = "
                 f"({self._expr(stmt.value, actx)}) & {mask}")
        elif isinstance(stmt, ir.Digest):
            values = ", ".join(self._expr(e, actx) for e in stmt.fields)
            emit(f"{pad}_dg = _DM(name={stmt.name!r}, values=[{values}], "
                 f"switch_name=SW.name)")
            emit(f"{pad}SW.digests.append(_dg)")
            if self._instrumented:
                emit(f"{pad}if TR.live:")
                emit(f"{pad}    TR.emit('digest', node=SW.name, "
                     f"packet_id=work.packet_id, digest={stmt.name!r})")
            emit(f"{pad}for _ls in SW.digest_listeners:")
            emit(f"{pad}    _ls(_dg)")
        elif isinstance(stmt, ir.SetValid):
            local = self._bind_names.get(stmt.header)
            if local is None:
                emit(f"{pad}_raise_p4("
                     f"{f'setValid on unknown header {stmt.header!r}'!r})")
            else:
                emit(f"{pad}_os({local}, 'valid', True)")
        elif isinstance(stmt, ir.SetInvalid):
            local = self._bind_names.get(stmt.header)
            if local is None:
                emit(f"{pad}_raise_p4("
                     f"{f'setInvalid on unknown header {stmt.header!r}'!r})")
            else:
                emit(f"{pad}_os({local}, 'valid', False)")
        elif isinstance(stmt, ir.MarkToDrop):
            emit(f"{pad}sm_drop = True")
        elif isinstance(stmt, ir.PopSourceRoute):
            sr_binds = [b for b in self._bind_types
                        if b.startswith("srcRoute")
                        and b[len("srcRoute"):].isdigit()]
            if sr_binds:
                entries = ", ".join(f"{b!r}: {self._bind_names[b]}"
                                    for b in sr_binds)
                emit(f"{pad}_pop_sr({{{entries}}})")
        elif isinstance(stmt, ir.ExternCall):
            if stmt.fn is not None:
                self._emit_extern(stmt, lines, ind, actx)
        else:
            emit(f"{pad}_raise_p4("
                 f"{f'unknown statement {type(stmt).__name__}'!r})")

    def _emit_apply(self, stmt: ir.ApplyTable, lines: List[str], ind: int,
                    actx: _Actx) -> None:
        pad = "    " * ind
        emit = lines.append
        table = self.program.tables.get(stmt.table)
        if table is None:
            emit(f"{pad}_raise_p4({f'unknown table {stmt.table!r}'!r})")
            return
        site = self._site
        self._site += 1
        gname, index = self._table_global(stmt.table)
        key = ", ".join(self._read(k.path, actx) for k in table.keys)
        key_tuple = f"({key},)" if len(table.keys) == 1 else f"({key})"
        if index._mode == "exact":
            emit(f"{pad}if {gname}._dirty:")
            emit(f"{pad}    {gname}._rebuild()")
            emit(f"{pad}_b{site} = {gname}._exact_map.get({key_tuple})")
        else:
            emit(f"{pad}_b{site} = {gname}.lookup({key_tuple})")
        emit(f"{pad}_h{site} = _b{site} is not None")
        # The default binding is baked in: it only changes through
        # set_default_action, whose hook recompiles this module.
        db = self._g(f"DB{site}", index.default_bound())
        if self._instrumented:
            counter = self._obs.registry.counter(
                "table_lookups_total", "table applies by outcome",
                labels=("switch", "table", "result"))
            hc = self._g(f"CH{site}", counter.labels(
                self.switch.name, stmt.table, "hit"))
            mc = self._g(f"CM{site}", counter.labels(
                self.switch.name, stmt.table, "miss"))
            emit(f"{pad}if _h{site}:")
            emit(f"{pad}    {hc}.inc()")
            emit(f"{pad}    if TR.live:")
            emit(f"{pad}        TR.emit('apply', node=SW.name, "
                 f"packet_id=work.packet_id, table={stmt.table!r}, "
                 f"result='hit')")
            emit(f"{pad}else:")
            emit(f"{pad}    {mc}.inc()")
            emit(f"{pad}    if TR.live:")
            emit(f"{pad}        TR.emit('apply', node=SW.name, "
                 f"packet_id=work.packet_id, table={stmt.table!r}, "
                 f"result='miss')")
            emit(f"{pad}    _b{site} = {db}")
        else:
            emit(f"{pad}if not _h{site}:")
            emit(f"{pad}    _b{site} = {db}")
        assumed = [name for name in self.program.actions
                   if name in self._assumed.get(stmt.table, ())]
        if assumed:
            emit(f"{pad}if _b{site} is not None:")
            inner = pad + "    "
            emit(f"{inner}_a{site}, _aa{site} = _b{site}")
            for j, name in enumerate(assumed):
                kw = "if" if j == 0 else "elif"
                emit(f"{inner}{kw} _a{site} == {self._action_ids[name]}:")
                self._emit_action_inline(site, self.program.actions[name],
                                         lines, ind + 2)
            emit(f"{inner}else:")
            emit(f"{inner}    _raise_p4('codegen dispatch missed an action; "
                 f"control-plane hook failed to recompile')")
        if stmt.hit_body or stmt.miss_body:
            emit(f"{pad}if _h{site}:")
            self._emit_body(stmt.hit_body, lines, ind + 1, actx)
            if stmt.miss_body:
                emit(f"{pad}else:")
                self._emit_body(stmt.miss_body, lines, ind + 1, actx)

    def _emit_action_inline(self, site: int, action: ir.Action,
                            lines: List[str], ind: int) -> None:
        pad = "    " * ind
        has_extern = any(
            isinstance(s, ir.ExternCall) and s.fn is not None
            for s in ir.walk_stmts(action.body))
        if has_extern:
            entries = ", ".join(f"{p!r}: _aa{site}[{i}]"
                                for i, (p, _) in enumerate(action.params))
            lines.append(f"{pad}_pa{site} = {{{entries}}}")
            params = {p: f"_pa{site}[{p!r}]" for p, _ in action.params}
            actx = _Actx(params, f"_pa{site}")
        else:
            params = {p: f"_aa{site}[{i}]"
                      for i, (p, _) in enumerate(action.params)}
            actx = _Actx(params, None)
        self._emit_body(action.body, lines, ind, actx)

    def _emit_extern(self, stmt: ir.ExternCall, lines: List[str], ind: int,
                     actx: _Actx) -> None:
        pad = "    " * ind
        emit = lines.append
        fn = self._g(f"EX{self._site}", stmt.fn)
        self._site += 1
        emit(f"{pad}_std = _SM(ingress_port=sm_ingress_port, "
             f"egress_spec=sm_egress_spec, egress_port=sm_egress_port, "
             f"packet_length=sm_packet_length, drop=sm_drop)")
        meta_entries = ", ".join(
            f"{name!r}: {self._meta_names[name]}"
            for name in self._meta_names if name in self._used_meta)
        emit(f"{pad}_meta = {{{meta_entries}}}")
        emit(f"{pad}_ctx = _CTX(PROG, work, _std, _meta, MW)")
        hdr_entries = ", ".join(f"{b!r}: {self._bind_names[b]}"
                                for b in self._bind_types)
        emit(f"{pad}_ctx.hdr = {{{hdr_entries}}}")
        emit(f"{pad}_ctx.tail = _tail")
        args_expr = actx.args_expr or ("_pa0" if self._top_extern else "{}")
        emit(f"{pad}_ctx.action_args = {args_expr}")
        emit(f"{pad}{fn}(_ctx)")
        # Sync the flat locals back from the context.
        emit(f"{pad}sm_ingress_port = _std.ingress_port")
        emit(f"{pad}sm_egress_spec = _std.egress_spec")
        emit(f"{pad}sm_egress_port = _std.egress_port")
        emit(f"{pad}sm_packet_length = _std.packet_length")
        emit(f"{pad}sm_drop = _std.drop")
        for name in self._meta_names:
            if name in self._used_meta:
                emit(f"{pad}{self._meta_names[name]} = _meta[{name!r}]")
        for bind in self._bind_types:
            emit(f"{pad}{self._bind_names[bind]} = _ctx.hdr[{bind!r}]")
            if bind in self._hoisted:
                emit(f"{pad}{self._vals_names[bind]} = "
                     f"{self._bind_names[bind]}.values")
        emit(f"{pad}_tail = _ctx.tail")
        if actx.args_expr is not None:
            emit(f"{pad}{actx.args_expr} = _ctx.action_args")

    # -- field access --------------------------------------------------------

    def _read(self, path: str, actx: _Actx, hoisted: bool = True) -> str:
        root, _, rest = path.partition(".")
        if root == "hdr":
            bind, _, fname = rest.partition(".")
            local = self._bind_names.get(bind)
            if local is None:
                return "0"  # unknown bind reads as invalid: 0
            if hoisted and bind in self._hoisted:
                values = self._vals_names[bind]
            else:
                values = f"{local}.values"
            return f"({values}[{fname!r}] if {local}.valid else 0)"
        if root == "meta":
            name = self._meta_names.get(rest)
            if name is None:
                return self._raise_expr(f"unknown metadata field {rest!r}")
            return name
        if root == "standard_metadata":
            if rest == "drop":
                return "(1 if sm_drop else 0)"
            if rest in _STD_FIELDS:
                return f"sm_{rest}"
            if rest in self._dyn_std:
                local = f"sx_{_sanitize(rest)}"
                return (f"(int(getattr(_STD0, {rest!r})) "
                        f"if {local} is _UNSET else {local})")
            return f"int(getattr(_STD0, {rest!r}))"
        if root == "param":
            expr = actx.params.get(rest)
            if expr is None:
                return self._raise_expr(
                    f"unbound action parameter {rest!r}")
            return expr
        return self._raise_expr(f"bad field path {path!r}")

    def _emit_write(self, path: str, value: str, lines: List[str],
                    ind: int) -> None:
        pad = "    " * ind
        emit = lines.append
        root, _, rest = path.partition(".")
        if root == "hdr":
            bind, _, fname = rest.partition(".")
            htype = self._bind_types.get(bind)
            if htype is None:
                emit(f"{pad}_raise_p4("
                     f"{f'write to unbound header {bind!r}'!r})")
                return
            if not htype.has_field(fname):
                emit(f"{pad}_raise_key({fname!r})")
                return
            mask = (1 << htype.field(fname).width) - 1
            if bind in self._hoisted:
                values = self._vals_names[bind]
            else:
                values = f"{self._bind_names[bind]}.values"
            emit(f"{pad}{values}[{fname!r}] = ({value}) & {mask}")
            return
        if root == "meta":
            name = self._meta_names.get(rest)
            if name is None:
                emit(f"{pad}_raise_p4("
                     f"{f'unknown metadata field {rest!r}'!r})")
                return
            mask = (1 << self._meta_width[rest]) - 1
            emit(f"{pad}{name} = ({value}) & {mask}")
            return
        if root == "standard_metadata":
            if rest in _STD_FIELDS:
                emit(f"{pad}sm_{rest} = int({value})")
            else:
                emit(f"{pad}sx_{_sanitize(rest)} = int({value})")
            return
        emit(f"{pad}_raise_p4({f'cannot write to {path!r}'!r})")

    def _raise_expr(self, message: str) -> str:
        return f"_raise_p4({message!r})"

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: ir.P4Expr, actx: _Actx) -> str:
        if isinstance(expr, ir.Const):
            return str(expr.value & ((1 << expr.width) - 1))
        if isinstance(expr, ir.FieldRef):
            return self._read(expr.path, actx)
        if isinstance(expr, ir.ValidRef):
            local = self._bind_names.get(expr.header)
            if local is None:
                return "0"
            return f"(1 if {local}.valid else 0)"
        if isinstance(expr, ir.UnExpr):
            operand = self._expr(expr.operand, actx)
            if expr.op == "!":
                return f"(0 if {operand} else 1)"
            mask = (1 << ir.unexpr_width(expr)) - 1
            if expr.op == "~":
                return f"(~{operand} & {mask})"
            if expr.op == "-":
                return f"(-{operand} & {mask})"
            return self._raise_expr(f"unknown unary op {expr.op!r}")
        if isinstance(expr, ir.BinExpr):
            return self._bin(expr, actx)
        return self._raise_expr(
            f"unknown expression {type(expr).__name__}")

    def _bin(self, expr: ir.BinExpr, actx: _Actx) -> str:
        op = expr.op
        left = self._expr(expr.left, actx)
        right = self._expr(expr.right, actx)
        if op == "&&":
            return f"(1 if {left} and {right} else 0)"
        if op == "||":
            return f"(1 if {left} or {right} else 0)"
        mask = (1 << expr.width) - 1
        if op in ("+", "-", "*", "&", "|", "^"):
            return f"(({left} {op} {right}) & {mask})"
        if op == "/":
            return f"_div({left}, {right}, {mask})"
        if op == "%":
            return f"_mod({left}, {right}, {mask})"
        if op in ("<<", ">>"):
            return f"(({left} {op} ({right} % {expr.width})) & {mask})"
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return f"(1 if {left} {op} {right} else 0)"
        if op == "absdiff":
            return f"_absdiff({left}, {right}, {mask})"
        if op in ("min", "max"):
            return f"{op}({left}, {right})"
        return self._raise_expr(f"unknown binary op {op!r}")

    def _cond(self, cond: ir.P4Expr, actx: _Actx) -> str:
        """Emit an expression used only for its truthiness (skips the
        1/0 boxing — mirrors FastPath._compile_cond)."""
        if isinstance(cond, ir.UnExpr) and cond.op == "!":
            return f"(not {self._cond(cond.operand, actx)})"
        if isinstance(cond, ir.BinExpr):
            if cond.op in ("==", "!=", "<", "<=", ">", ">="):
                left = self._expr(cond.left, actx)
                right = self._expr(cond.right, actx)
                return f"({left} {cond.op} {right})"
            if cond.op == "&&":
                return (f"({self._cond(cond.left, actx)} and "
                        f"{self._cond(cond.right, actx)})")
            if cond.op == "||":
                return (f"({self._cond(cond.left, actx)} or "
                        f"{self._cond(cond.right, actx)})")
        return self._expr(cond, actx)

    # ==================================================================
    # Metered wrappers (installed only when the obs handle is live)
    # ==================================================================

    def _process_obs(self, packet: Packet,
                     ingress_port: int) -> List[Tuple[int, Packet]]:
        switch = self.switch
        tracer = self._obs.tracer
        if tracer.live:
            tracer.emit("parse", node=switch.name,
                        packet_id=packet.packet_id, port=ingress_port,
                        packet=packet, packet_length=packet.length)
        switch._m_packets.labels(switch.name, ingress_port).inc()
        start = time.perf_counter_ns()
        outputs = self._run(packet, ingress_port)
        switch._m_ns.observe(time.perf_counter_ns() - start)
        if not outputs:
            reason = drop_reason(packet)
            switch._m_dropped.labels(switch.name, reason).inc()
            if tracer.live:
                tracer.emit("drop", node=switch.name,
                            packet_id=packet.packet_id, reason=reason)
        elif tracer.live:
            for egress_port, out_packet in outputs:
                tracer.emit("deparse", node=switch.name,
                            packet_id=out_packet.packet_id,
                            port=egress_port, egress_port=egress_port)
        return outputs

    def _process_batch_obs(self, items) -> List[List[Tuple[int, Packet]]]:
        return [self._process_obs(packet, port) for packet, port in items]
