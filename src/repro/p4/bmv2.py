"""Behavioral model for the P4 IR — the repository's stand-in for bmv2.

:class:`Bmv2Switch` executes a :class:`~repro.p4.ir.P4Program` on packets:
parse → ingress → egress → deparse, with match-action tables, registers,
and digests, and exposes a P4Runtime-like control API (table entry
insert/delete, register access, digest subscription).

Two execution engines share this front door (``engine=`` on the
constructor): the tree-walking interpreter in this module is the
reference semantics, and :mod:`repro.p4.fastpath` compiles the program
to closures for roughly an order of magnitude more packets/sec.  The
differential suite (``tests/test_engine_differential.py``) pins the two
to identical observable behavior.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from ..net.packet import Header, Packet
from ..obs import NULL_OBS, Observability
from ..obs.metrics import DEFAULT_NS_BUCKETS
from . import ir


class P4RuntimeError(Exception):
    """Raised on malformed control-plane operations or broken programs."""


DROP_PORT = 511

#: Default ring size for bounded message logs (digests, network reports).
#: Large enough that tests and short replays see every message; long
#: replays keep memory flat while ``total`` keeps counting.
DEFAULT_LOG_CAPACITY = 4096


class BoundedLog:
    """An append-only message log with a bounded ring of recent entries.

    Looks like a list for the common read patterns (``len``, iteration,
    indexing, slicing, ``==`` against a list) but only retains the last
    ``capacity`` entries; ``total`` counts every append ever made and
    ``dropped`` says how many fell off the front.  ``on_evict``, when
    given, is called with the count of entries just rotated out (always
    1 per overflowing append) — the observability plane uses it to
    surface silent evictions as ``log_evictions_total``.
    """

    __slots__ = ("capacity", "total", "_ring", "_on_evict")

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY,
                 on_evict: Optional[Callable[[int], None]] = None):
        if capacity <= 0:
            raise ValueError("log capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._ring: deque = deque(maxlen=capacity)
        self._on_evict = on_evict

    @property
    def dropped(self) -> int:
        return self.total - len(self._ring)

    def append(self, item: Any) -> None:
        self.total += 1
        evicting = len(self._ring) == self.capacity
        self._ring.append(item)
        if evicting and self._on_evict is not None:
            self._on_evict(1)

    def clear(self) -> None:
        self.total = 0
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return bool(self._ring)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._ring)

    def __getitem__(self, key: Union[int, slice]) -> Any:
        if isinstance(key, slice):
            return list(self._ring)[key]
        return self._ring[key]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, BoundedLog):
            return list(self._ring) == list(other._ring)
        if isinstance(other, list):
            return list(self._ring) == other
        return NotImplemented

    def __repr__(self) -> str:
        return (f"BoundedLog({list(self._ring)!r}, total={self.total}, "
                f"evicted={self.dropped}, capacity={self.capacity})")


@dataclass
class StandardMetadata:
    ingress_port: int = 0
    egress_spec: int = 0
    egress_port: int = 0
    packet_length: int = 0
    drop: bool = False


@dataclass
class DigestMessage:
    """A digest delivered to the control plane."""

    name: str
    values: List[int]
    switch_name: str = ""


class PacketContext:
    """Execution context for one packet traversing the pipeline."""

    def __init__(self, program: ir.P4Program, packet: Packet,
                 standard: StandardMetadata):
        self.program = program
        self.packet = packet
        self.standard = standard
        self.hdr: Dict[str, Header] = {}
        self.tail: List[Header] = []
        self.meta: Dict[str, int] = {name: 0 for name, _ in program.metadata}
        self._meta_width = dict(program.metadata)
        self.action_args: Dict[str, int] = {}

    # -- field access ------------------------------------------------------

    def read(self, path: str) -> int:
        root, _, rest = path.partition(".")
        if root == "hdr":
            bind, _, fname = rest.partition(".")
            header = self.hdr.get(bind)
            if header is None or not header.valid:
                return 0  # reading an invalid header yields 0 (bmv2-like)
            return header.get(fname)
        if root == "meta":
            if rest not in self.meta:
                raise P4RuntimeError(f"unknown metadata field {rest!r}")
            return self.meta[rest]
        if root == "standard_metadata":
            return int(getattr(self.standard, rest))
        if root == "param":
            if rest not in self.action_args:
                raise P4RuntimeError(f"unbound action parameter {rest!r}")
            return self.action_args[rest]
        raise P4RuntimeError(f"bad field path {path!r}")

    def write(self, path: str, value: int) -> None:
        root, _, rest = path.partition(".")
        if root == "hdr":
            bind, _, fname = rest.partition(".")
            header = self.hdr.get(bind)
            if header is None:
                raise P4RuntimeError(f"write to unbound header {bind!r}")
            header.set(fname, value)
            return
        if root == "meta":
            if rest not in self.meta:
                raise P4RuntimeError(f"unknown metadata field {rest!r}")
            width = self._meta_width[rest]
            self.meta[rest] = int(value) & ((1 << width) - 1)
            return
        if root == "standard_metadata":
            setattr(self.standard, rest, int(value))
            return
        raise P4RuntimeError(f"cannot write to {path!r}")

    def is_valid(self, bind: str) -> bool:
        header = self.hdr.get(bind)
        return header is not None and header.valid


def _pop_source_route(ctx: "PacketContext") -> None:
    """Shift the source-route stack down by one slot (both engines)."""
    binds = sorted(
        (b for b in ctx.hdr if b.startswith("srcRoute") and
         b[len("srcRoute"):].isdigit()),
        key=lambda b: int(b[len("srcRoute"):]),
    )
    valid = [b for b in binds if ctx.hdr[b].valid]
    if not valid:
        return
    for i in range(len(valid) - 1):
        src = ctx.hdr[valid[i + 1]]
        dst = ctx.hdr[valid[i]]
        dst.values.update(src.values)
    ctx.hdr[valid[-1]].valid = False


def drop_reason(packet: Packet) -> str:
    """Classify a pipeline drop for the observability plane.

    A heuristic label, not ground truth: a packet whose IPv4 TTL is
    exhausted on arrival is tagged ``ttl``; every other pipeline
    decision (table default drop, missing route entry, checker reject)
    is ``pipeline``.
    """
    ipv4 = packet.find("ipv4")
    if ipv4 is not None and ipv4.valid and ipv4.get("ttl") <= 1:
        return "ttl"
    return "pipeline"


class Bmv2Switch:
    """Executes a P4 program; holds runtime table/register state.

    ``engine`` selects how packets are executed: ``"fast"`` (default)
    compiles the program once to Python closures with indexed table
    lookup (:mod:`repro.p4.fastpath`); ``"interp"`` walks the IR tree
    per packet and serves as the reference semantics.

    ``obs`` attaches the observability plane (:mod:`repro.obs`); the
    default :data:`~repro.obs.NULL_OBS` keeps packet processing exactly
    as cheap as an uninstrumented switch.
    """

    def __init__(self, program: ir.P4Program, name: str = "s1",
                 switch_id: int = 0, engine: str = "fast",
                 digest_capacity: int = DEFAULT_LOG_CAPACITY,
                 obs: Optional[Observability] = None):
        if engine not in ("fast", "interp", "codegen"):
            raise ValueError(f"unknown engine {engine!r} "
                             "(expected 'fast', 'interp' or 'codegen')")
        self.program = program
        self.name = name
        self.switch_id = switch_id
        self.engine = engine
        self.entries: Dict[str, List[ir.TableEntry]] = {
            t: [] for t in program.tables
        }
        self.registers: Dict[str, List[int]] = {
            reg.name: [0] * reg.size for reg in program.registers
        }
        self._register_width: Dict[str, int] = {
            reg.name: reg.width for reg in program.registers
        }
        # Per-switch default actions.  The ir.Table declaration is shared
        # by every switch running this program, so runtime default-action
        # state must live here, seeded from the program's static defaults.
        self.default_actions: Dict[str, Optional[Tuple[str, List[int]]]] = {
            name: (None if table.default_action is None
                   else (table.default_action[0],
                         list(table.default_action[1])))
            for name, table in program.tables.items()
        }
        self.digest_listeners: List[Callable[[DigestMessage], None]] = []
        # Control-plane change listeners: invoked after any table or
        # register mutation through this API (the batched network uses
        # this to flush cached transit records).
        self.config_listeners: List[Callable[[str], None]] = []
        self.digests = BoundedLog(digest_capacity,
                                  on_evict=self._on_digest_evict)
        # Statistics for the evaluation harness.
        self.packets_processed = 0
        self.packets_dropped = 0
        # Copy elision: a program that provably never mutates headers can
        # run on a packet shell sharing the original Header instances.
        self._share_headers = not ir.mutates_headers(program)
        self.obs = NULL_OBS
        self._obs_live = False
        if obs is not None:
            self._bind_observability(obs)
        self._fast = None
        if engine == "fast":
            from .fastpath import FastPath  # deferred: fastpath imports us
            self._fast = FastPath(program, self)
        elif engine == "codegen":
            from .codegen import CodegenEngine  # deferred: codegen imports us
            self._fast = CodegenEngine(program, self)

    # ==================================================================
    # Observability
    # ==================================================================

    def _bind_observability(self, obs: Observability) -> None:
        self.obs = obs
        self._obs_live = obs.live
        if not self._obs_live:
            return
        registry = obs.registry
        self._m_packets = registry.counter(
            "switch_packets_total", "packets entering a pipeline",
            labels=("switch", "port"))
        self._m_dropped = registry.counter(
            "switch_packets_dropped_total",
            "packets discarded by a pipeline",
            labels=("switch", "reason"))
        self._m_table = registry.counter(
            "table_lookups_total", "table applies by outcome",
            labels=("switch", "table", "result"))
        name = {"fast": "fastpath_ns_per_packet",
                "codegen": "codegen_ns_per_packet"}.get(
                    self.engine, "interp_ns_per_packet")
        self._m_ns = registry.histogram(
            name, f"{self.engine} engine nanoseconds per packet",
            buckets=DEFAULT_NS_BUCKETS)

    def attach_observability(self, obs: Observability) -> None:
        """Attach (or detach, with :data:`~repro.obs.NULL_OBS`) the
        observability plane.

        The fast engine recompiles so instrumentation is specialized at
        compile time — with a null handle the generated closures are
        byte-for-byte the uninstrumented ones and the hot path pays
        nothing.
        """
        self._bind_observability(obs)
        if self.engine == "fast":
            from .fastpath import FastPath
            self._fast = FastPath(self.program, self)
        elif self.engine == "codegen":
            from .codegen import CodegenEngine
            self._fast = CodegenEngine(self.program, self)

    def _on_digest_evict(self, count: int) -> None:
        # Rare (ring overflow only): route through whatever registry is
        # attached at eviction time; the null registry no-ops.
        self.obs.registry.counter(
            "log_evictions_total",
            "entries rotated out of bounded message logs",
            labels=("log", "node")).labels("digests", self.name).inc(count)

    # ==================================================================
    # Control-plane (P4Runtime-like) API
    # ==================================================================

    def insert_entry(self, table_name: str, match: List[ir.MatchSpec],
                     action: str, args: Optional[List[int]] = None,
                     priority: int = 0) -> ir.TableEntry:
        table = self._table(table_name)
        if action not in self.program.actions:
            raise P4RuntimeError(f"unknown action {action!r}")
        expected = len(self.program.actions[action].params)
        args = list(args or [])
        if len(args) != expected:
            raise P4RuntimeError(
                f"action {action!r} expects {expected} args, got {len(args)}"
            )
        if len(match) != len(table.keys):
            raise P4RuntimeError(
                f"table {table_name!r} has {len(table.keys)} keys, "
                f"got {len(match)} match specs"
            )
        entry = ir.TableEntry(match=match, action=action, args=args,
                              priority=priority)
        self.entries[table_name].append(entry)
        if self._fast is not None:
            self._fast.invalidate_table(table_name)
        self._notify_config(table_name)
        return entry

    def insert_entries(self, table_name: str,
                       rows: Sequence[Tuple[List[ir.MatchSpec], str,
                                            Optional[List[int]], int]]
                       ) -> List[ir.TableEntry]:
        """Install a batch of entries with one index update and one
        config notification.

        ``rows`` holds ``(match, action, args, priority)`` tuples.  The
        execution engines fold the new entries into their live table
        indexes incrementally instead of discarding them, so bulk
        control-plane churn (the Aether attach path) does not trigger a
        full index rebuild per entry — or even per batch.
        """
        table = self._table(table_name)
        created: List[ir.TableEntry] = []
        for match, action, args, priority in rows:
            if action not in self.program.actions:
                raise P4RuntimeError(f"unknown action {action!r}")
            expected = len(self.program.actions[action].params)
            args = list(args or [])
            if len(args) != expected:
                raise P4RuntimeError(
                    f"action {action!r} expects {expected} args, "
                    f"got {len(args)}"
                )
            if len(match) != len(table.keys):
                raise P4RuntimeError(
                    f"table {table_name!r} has {len(table.keys)} keys, "
                    f"got {len(match)} match specs"
                )
            created.append(ir.TableEntry(match=match, action=action,
                                         args=args, priority=priority))
        self.entries[table_name].extend(created)
        if self._fast is not None:
            hook = getattr(self._fast, "entries_inserted", None)
            if hook is not None:
                hook(table_name, created)
            else:
                self._fast.invalidate_table(table_name)
        self._notify_config(table_name)
        return created

    def delete_entry(self, table_name: str, entry: ir.TableEntry) -> None:
        self._table(table_name)
        try:
            self.entries[table_name].remove(entry)
        except ValueError as exc:
            raise P4RuntimeError("entry not installed") from exc
        if self._fast is not None:
            self._fast.invalidate_table(table_name)
        self._notify_config(table_name)

    def delete_entries(self, table_name: str,
                       entries: Sequence[ir.TableEntry]) -> None:
        """Remove a batch of installed entries in one pass over the
        entry list (``delete_entry`` is O(installed) per call), with one
        index update and one config notification for the whole batch."""
        self._table(table_name)
        ids = {id(e): e for e in entries}
        if not ids:
            return
        installed = self.entries[table_name]
        kept = [e for e in installed if id(e) not in ids]
        if len(kept) != len(installed) - len(ids):
            raise P4RuntimeError("entry not installed")
        installed[:] = kept
        if self._fast is not None:
            hook = getattr(self._fast, "entries_removed", None)
            if hook is not None:
                hook(table_name, list(ids.values()))
            else:
                self._fast.invalidate_table(table_name)
        self._notify_config(table_name)

    def clear_table(self, table_name: str) -> None:
        self._table(table_name)
        self.entries[table_name].clear()
        if self._fast is not None:
            self._fast.invalidate_table(table_name)
        self._notify_config(table_name)

    def set_default_action(self, table_name: str, action: str,
                           args: Optional[List[int]] = None) -> None:
        self._table(table_name)
        if action not in self.program.actions:
            raise P4RuntimeError(f"unknown action {action!r}")
        expected = len(self.program.actions[action].params)
        args = list(args or [])
        if len(args) != expected:
            raise P4RuntimeError(
                f"action {action!r} expects {expected} args, got {len(args)}"
            )
        self.default_actions[table_name] = (action, args)
        # The codegen engine bakes default-action facts into generated
        # source; give it a chance to recompile.  FastPath re-binds
        # defaults lazily and has no such hook.
        notify = getattr(self._fast, "on_default_change", None)
        if notify is not None:
            notify(table_name)
        self._notify_config(table_name)

    # Control-plane register access validates its operands and raises
    # :class:`P4RuntimeError` on a bad name or out-of-range index.  The
    # *data-plane* RegisterRead/RegisterWrite statements deliberately do
    # not: an out-of-range data-plane read yields 0 and an out-of-range
    # write is ignored (see ``_exec``), mirroring hardware that clamps
    # rather than traps.

    def _register_cells(self, name: str, index: int) -> List[int]:
        values = self.registers.get(name)
        if values is None:
            raise P4RuntimeError(f"unknown register {name!r}")
        if not 0 <= index < len(values):
            raise P4RuntimeError(
                f"register {name!r} index {index} out of range "
                f"[0, {len(values)})"
            )
        return values

    def register_read(self, name: str, index: int = 0) -> int:
        return self._register_cells(name, index)[index]

    def register_write(self, name: str, index: int, value: int) -> None:
        values = self._register_cells(name, index)
        width = self._register_width[name]
        values[index] = int(value) & ((1 << width) - 1)
        self._notify_config(name)

    def on_digest(self, listener: Callable[[DigestMessage], None]) -> None:
        self.digest_listeners.append(listener)

    def on_config_change(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired after every control-plane mutation
        (table entry insert/delete/clear, default-action change,
        register write) with the mutated table/register name."""
        self.config_listeners.append(listener)

    def _notify_config(self, name: str) -> None:
        for listener in self.config_listeners:
            listener(name)

    def _table(self, name: str) -> ir.Table:
        if name not in self.program.tables:
            raise P4RuntimeError(f"unknown table {name!r}")
        return self.program.tables[name]

    # ==================================================================
    # Packet processing
    # ==================================================================

    def process(self, packet: Packet,
                ingress_port: int) -> List[Tuple[int, Packet]]:
        """Run one packet through the pipeline.

        Returns a list of (egress_port, packet) pairs — empty if dropped.
        """
        if self._fast is not None:
            return self._fast.process(packet, ingress_port)
        if self._obs_live:
            return self._process_interp_obs(packet, ingress_port)
        return self._process_interp(packet, ingress_port)

    def process_batch(self, items) -> List[List[Tuple[int, Packet]]]:
        """Run a vector of ``(packet, ingress_port)`` pairs.

        The codegen engine executes the whole vector inside one
        generated loop; other engines fall back to per-packet
        :meth:`process` calls with identical observable behavior.
        """
        batch = getattr(self._fast, "process_batch", None)
        if batch is not None:
            return batch(items)
        return [self.process(packet, port) for packet, port in items]

    def _process_interp_obs(self, packet: Packet,
                            ingress_port: int) -> List[Tuple[int, Packet]]:
        """The interp path with metrics + trace events wrapped around."""
        tracer = self.obs.tracer
        if tracer.live:
            tracer.emit("parse", node=self.name,
                        packet_id=packet.packet_id, port=ingress_port,
                        packet=packet, packet_length=packet.length)
        self._m_packets.labels(self.name, ingress_port).inc()
        start = time.perf_counter_ns()
        outputs = self._process_interp(packet, ingress_port)
        self._m_ns.observe(time.perf_counter_ns() - start)
        if not outputs:
            reason = drop_reason(packet)
            self._m_dropped.labels(self.name, reason).inc()
            if tracer.live:
                tracer.emit("drop", node=self.name,
                            packet_id=packet.packet_id, reason=reason)
        elif tracer.live:
            for egress_port, out_packet in outputs:
                tracer.emit("deparse", node=self.name,
                            packet_id=out_packet.packet_id,
                            port=egress_port, egress_port=egress_port)
        return outputs

    def _process_interp(self, packet: Packet,
                        ingress_port: int) -> List[Tuple[int, Packet]]:
        self.packets_processed += 1
        work = (packet.copy_shared() if self._share_headers
                else packet.copy())
        standard = StandardMetadata(ingress_port=ingress_port,
                                    packet_length=work.length)
        ctx = PacketContext(self.program, work, standard)
        self._parse(ctx)

        self._exec_body(self.program.ingress, ctx)
        if ctx.standard.drop or ctx.standard.egress_spec == DROP_PORT:
            self.packets_dropped += 1
            return []
        ctx.standard.egress_port = ctx.standard.egress_spec

        self._exec_body(self.program.egress, ctx)
        if ctx.standard.drop:
            self.packets_dropped += 1
            return []

        out = self._deparse(ctx)
        return [(ctx.standard.egress_port, out)]

    # -- parsing ------------------------------------------------------------

    def _parse(self, ctx: PacketContext) -> None:
        headers = list(ctx.packet.headers)
        cursor = 0
        state_name = self.program.parser.start
        # Pre-bind every known bind name to an invalid header instance so
        # setValid/assign work on headers the parser did not extract.
        for bind, htype in self.program.bind_types().items():
            inst = Header(htype)
            inst.valid = False
            ctx.hdr[bind] = inst
        guard = 0
        while state_name not in (ir.ACCEPT, ir.REJECT_STATE):
            guard += 1
            if guard > 64:
                raise P4RuntimeError("parser did not terminate")
            state = self.program.parser.state(state_name)
            for ex in state.extracts:
                if isinstance(ex, ir.Extract):
                    if cursor >= len(headers) or \
                            headers[cursor].htype is not ex.htype:
                        state_name = ir.REJECT_STATE
                        break
                    ctx.hdr[ex.bind] = headers[cursor]
                    cursor += 1
                else:  # ExtractStack
                    depth = 0
                    while depth < ex.max_depth and cursor < len(headers) \
                            and headers[cursor].htype is ex.htype:
                        ctx.hdr[f"{ex.bind}{depth}"] = headers[cursor]
                        stop = headers[cursor].get(ex.loop_field) != 0
                        cursor += 1
                        depth += 1
                        if stop:
                            break
            else:
                state_name = self._transition(state, ctx)
                continue
            break
        ctx.tail = headers[cursor:]

    def _transition(self, state: ir.ParserState, ctx: PacketContext) -> str:
        default = ir.ACCEPT
        for tr in state.transitions:
            if tr.field_path is None:
                default = tr.next_state
            elif ctx.read(tr.field_path) == tr.value:
                return tr.next_state
        return default

    # -- deparsing -----------------------------------------------------------

    def _deparse(self, ctx: PacketContext) -> Packet:
        emitted: List[Header] = []
        order = self.program.emit_order or list(ctx.hdr)
        for bind in order:
            header = ctx.hdr.get(bind)
            if header is not None and header.valid:
                emitted.append(header)
        emitted.extend(ctx.tail)
        ctx.packet.headers = emitted
        return ctx.packet

    # -- statement execution ----------------------------------------------------

    def _exec_body(self, stmts: List[ir.P4Stmt], ctx: PacketContext) -> None:
        for stmt in stmts:
            self._exec(stmt, ctx)

    def _exec(self, stmt: ir.P4Stmt, ctx: PacketContext) -> None:
        if isinstance(stmt, ir.AssignStmt):
            ctx.write(stmt.dest, self._eval(stmt.value, ctx))
            return
        if isinstance(stmt, ir.IfStmt):
            if self._eval(stmt.cond, ctx):
                self._exec_body(stmt.then_body, ctx)
            else:
                self._exec_body(stmt.else_body, ctx)
            return
        if isinstance(stmt, ir.ApplyTable):
            hit = self._apply_table(stmt.table, ctx)
            if hit:
                self._exec_body(stmt.hit_body, ctx)
            else:
                self._exec_body(stmt.miss_body, ctx)
            return
        if isinstance(stmt, ir.RegisterRead):
            index = self._eval(stmt.index, ctx)
            values = self.registers[stmt.register]
            value = values[index] if 0 <= index < len(values) else 0
            ctx.write(stmt.dest, value)
            return
        if isinstance(stmt, ir.RegisterWrite):
            index = self._eval(stmt.index, ctx)
            values = self.registers[stmt.register]
            if 0 <= index < len(values):
                width = self._register_width[stmt.register]
                values[index] = self._eval(stmt.value, ctx) & ((1 << width) - 1)
            return
        if isinstance(stmt, ir.Digest):
            message = DigestMessage(
                name=stmt.name,
                values=[self._eval(e, ctx) for e in stmt.fields],
                switch_name=self.name,
            )
            self.digests.append(message)
            if self._obs_live and self.obs.tracer.live:
                self.obs.tracer.emit("digest", node=self.name,
                                     packet_id=ctx.packet.packet_id,
                                     digest=stmt.name)
            for listener in self.digest_listeners:
                listener(message)
            return
        if isinstance(stmt, ir.SetValid):
            header = ctx.hdr.get(stmt.header)
            if header is None:
                raise P4RuntimeError(f"setValid on unknown header {stmt.header!r}")
            header.valid = True
            return
        if isinstance(stmt, ir.SetInvalid):
            header = ctx.hdr.get(stmt.header)
            if header is None:
                raise P4RuntimeError(f"setInvalid on unknown header {stmt.header!r}")
            header.valid = False
            return
        if isinstance(stmt, ir.MarkToDrop):
            ctx.standard.drop = True
            return
        if isinstance(stmt, ir.PopSourceRoute):
            self._pop_source_route(ctx)
            return
        if isinstance(stmt, ir.ExternCall):
            if stmt.fn is not None:
                stmt.fn(ctx)
            return
        raise P4RuntimeError(f"unknown statement {type(stmt).__name__}")

    def _pop_source_route(self, ctx: PacketContext) -> None:
        _pop_source_route(ctx)

    # -- tables --------------------------------------------------------------------

    def _apply_table(self, name: str, ctx: PacketContext) -> bool:
        """Apply a table; returns True on hit."""
        table = self._table(name)
        key_values = [ctx.read(key.path) for key in table.keys]
        best: Optional[ir.TableEntry] = None
        for entry in self.entries[name]:
            if not entry.matches(table, key_values):
                continue
            if best is None or self._beats(table, entry, best):
                best = entry
        if self._obs_live:
            self._observe_apply(name, "hit" if best is not None else "miss",
                                ctx)
        if best is not None:
            self._run_action(best.action, best.args, ctx)
            return True
        default = self.default_actions[name]
        if default is not None:
            action, args = default
            self._run_action(action, args, ctx)
        return False

    def _observe_apply(self, table: str, result: str,
                       ctx: PacketContext) -> None:
        self._m_table.labels(self.name, table, result).inc()
        tracer = self.obs.tracer
        if tracer.live:
            tracer.emit("apply", node=self.name,
                        packet_id=ctx.packet.packet_id,
                        table=table, result=result)

    @staticmethod
    def _beats(table: ir.Table, a: ir.TableEntry, b: ir.TableEntry) -> bool:
        # LPM: longest prefix wins; otherwise numeric priority (higher wins).
        lpm_index = next(
            (i for i, k in enumerate(table.keys) if k.kind is ir.MatchKind.LPM),
            None,
        )
        if lpm_index is not None:
            a_len = a.match[lpm_index][1]  # type: ignore[index]
            b_len = b.match[lpm_index][1]  # type: ignore[index]
            if a_len != b_len:
                return a_len > b_len
        return a.priority > b.priority

    def _run_action(self, name: str, args: List[int],
                    ctx: PacketContext) -> None:
        action = self.program.actions.get(name)
        if action is None:
            raise P4RuntimeError(f"unknown action {name!r}")
        saved = ctx.action_args
        ctx.action_args = {
            pname: value for (pname, _), value in zip(action.params, args)
        }
        try:
            self._exec_body(action.body, ctx)
        finally:
            ctx.action_args = saved

    # -- expressions -----------------------------------------------------------------

    def _eval(self, expr: ir.P4Expr, ctx: PacketContext) -> int:
        if isinstance(expr, ir.Const):
            return expr.value & ((1 << expr.width) - 1)
        if isinstance(expr, ir.FieldRef):
            return ctx.read(expr.path)
        if isinstance(expr, ir.ValidRef):
            return 1 if ctx.is_valid(expr.header) else 0
        if isinstance(expr, ir.UnExpr):
            value = self._eval(expr.operand, ctx)
            if expr.op == "!":
                return 0 if value else 1
            mask = (1 << ir.unexpr_width(expr)) - 1
            if expr.op == "~":
                return ~value & mask
            if expr.op == "-":
                return -value & mask
            raise P4RuntimeError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, ir.BinExpr):
            return self._eval_bin(expr, ctx)
        raise P4RuntimeError(f"unknown expression {type(expr).__name__}")

    def _eval_bin(self, expr: ir.BinExpr, ctx: PacketContext) -> int:
        op = expr.op
        if op == "&&":
            return 1 if (self._eval(expr.left, ctx)
                         and self._eval(expr.right, ctx)) else 0
        if op == "||":
            return 1 if (self._eval(expr.left, ctx)
                         or self._eval(expr.right, ctx)) else 0
        left = self._eval(expr.left, ctx)
        right = self._eval(expr.right, ctx)
        mask = (1 << expr.width) - 1
        if op == "+":
            return (left + right) & mask
        if op == "-":
            return (left - right) & mask
        if op == "*":
            return (left * right) & mask
        if op == "/":
            return (left // right) & mask if right else 0
        if op == "%":
            return (left % right) & mask if right else 0
        if op == "&":
            return (left & right) & mask
        if op == "|":
            return (left | right) & mask
        if op == "^":
            return (left ^ right) & mask
        if op == "<<":
            return (left << (right % expr.width)) & mask
        if op == ">>":
            return (left >> (right % expr.width)) & mask
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "absdiff":
            # abs over two's complement of a (left - right) difference:
            # min(d, 2^w - d), matching the Indus interpreter's abs().
            diff = (left - right) & mask
            return min(diff, (-diff) & mask)
        if op == "min":
            return min(left, right)
        if op == "max":
            return max(left, right)
        raise P4RuntimeError(f"unknown binary op {op!r}")
