"""A P4-16–like intermediate representation.

The Indus compiler targets this IR; forwarding programs (source routing,
the Aether fabric/UPF) are written directly in it.  Two consumers share
it: :mod:`repro.p4.pretty` renders it to P4-16 text (for the generated
lines-of-code measurements of Table 1 and human inspection), and
:mod:`repro.p4.bmv2` executes it on packets (standing in for the bmv2
behavioral model).

Conventions:

* Field paths are dotted strings rooted at ``hdr``, ``meta``,
  ``standard_metadata``, or ``param`` (action data), e.g.
  ``hdr.ipv4.src_addr``.
* Header *bind names* (the name after ``hdr.``) may differ from the
  header type name — the Aether parser binds two IPv4 headers as
  ``ipv4`` and ``inner_ipv4``.
* Header stacks are modeled by indexed bind names: ``srcRoute0``,
  ``srcRoute1``, … (the compiler's loop unrolling produces exactly this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..indus.errors import SourceSpan, UNKNOWN_SPAN
from ..net.packet import HeaderType


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class P4Expr:
    """Base class for IR expressions.

    Every expression carries a ``span`` pointing back at the Indus source
    it was lowered from (:data:`~repro.indus.errors.UNKNOWN_SPAN` for
    synthesized nodes and hand-written forwarding programs).  The span is
    provenance only: it never participates in equality or hashing, so two
    structurally identical expressions from different source lines still
    compare equal.
    """

    span: SourceSpan = field(default=UNKNOWN_SPAN, kw_only=True,
                             compare=False, repr=False)


@dataclass(frozen=True)
class Const(P4Expr):
    value: int
    width: int = 32

    def __str__(self) -> str:
        return f"{self.width}w{self.value}"


@dataclass(frozen=True)
class FieldRef(P4Expr):
    """A reference to a field: ``hdr.ipv4.ttl``, ``meta.tenant``, …"""

    path: str

    def __str__(self) -> str:
        return self.path


@dataclass(frozen=True)
class ValidRef(P4Expr):
    """``hdr.<bind>.isValid()``"""

    header: str

    def __str__(self) -> str:
        return f"hdr.{self.header}.isValid()"


@dataclass(frozen=True)
class UnExpr(P4Expr):
    op: str  # '!', '~', '-'
    operand: P4Expr
    # Result width for '~' and '-'; None means "derive from the operand"
    # (see :func:`unexpr_width`).  '!' always yields a 1-bit boolean.
    width: Optional[int] = None


@dataclass(frozen=True)
class BinExpr(P4Expr):
    op: str  # arithmetic/bitwise/comparison/logical, plus 'absdiff' 'min' 'max'
    left: P4Expr
    right: P4Expr
    width: int = 32  # result width for arithmetic ops


def const_bool(value: bool) -> Const:
    return Const(1 if value else 0, 1)


def unexpr_width(expr: UnExpr) -> int:
    """The result width of a unary '~'/'-': the explicit width when the
    builder supplied one, otherwise the operand's declared width (falling
    back to 32 for field references, whose width lives in the header
    declaration rather than the expression tree)."""
    if expr.width is not None:
        return expr.width
    operand = expr.operand
    if isinstance(operand, Const):
        return operand.width
    if isinstance(operand, BinExpr):
        return operand.width
    if isinstance(operand, UnExpr):
        return 1 if operand.op == "!" else unexpr_width(operand)
    return 32


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class P4Stmt:
    """Base class for IR statements.

    Like :class:`P4Expr`, statements carry a provenance ``span``
    (excluded from equality) mapping compiled IR back to Indus source.
    """

    span: SourceSpan = field(default=UNKNOWN_SPAN, kw_only=True,
                             compare=False, repr=False)


@dataclass
class AssignStmt(P4Stmt):
    dest: str
    value: P4Expr


@dataclass
class IfStmt(P4Stmt):
    cond: P4Expr
    then_body: List[P4Stmt] = field(default_factory=list)
    else_body: List[P4Stmt] = field(default_factory=list)


@dataclass
class ApplyTable(P4Stmt):
    """Apply a table; optional hit/miss bodies (``if (t.apply().hit)``)."""

    table: str
    hit_body: List["P4Stmt"] = field(default_factory=list)
    miss_body: List["P4Stmt"] = field(default_factory=list)


@dataclass
class RegisterRead(P4Stmt):
    dest: str
    register: str
    index: P4Expr


@dataclass
class RegisterWrite(P4Stmt):
    register: str
    index: P4Expr
    value: P4Expr


@dataclass
class Digest(P4Stmt):
    """Send a report to the control plane (bmv2 digest / Tofino mirror)."""

    name: str
    fields: List[P4Expr] = field(default_factory=list)


@dataclass
class SetValid(P4Stmt):
    header: str


@dataclass
class SetInvalid(P4Stmt):
    header: str


@dataclass
class MarkToDrop(P4Stmt):
    pass


@dataclass
class PopSourceRoute(P4Stmt):
    """Pop the top source-route stack entry (forwarding-program primitive)."""

    pass


@dataclass
class ExternCall(P4Stmt):
    """Escape hatch for substrate-specific primitives.

    ``fn(ctx)`` receives the executing :class:`~repro.p4.bmv2.PacketContext`.
    The pretty-printer renders it as an extern invocation.
    """

    name: str
    fn: Optional[Callable[[Any], None]] = None


# ---------------------------------------------------------------------------
# Actions and tables
# ---------------------------------------------------------------------------

@dataclass
class Action:
    """A P4 action: parameters (action data) plus a statement body."""

    name: str
    params: List[Tuple[str, int]] = field(default_factory=list)  # (name, width)
    body: List[P4Stmt] = field(default_factory=list)


class MatchKind(enum.Enum):
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"
    RANGE = "range"


@dataclass
class TableKey:
    path: str
    kind: MatchKind = MatchKind.EXACT


@dataclass
class Table:
    """A match-action table declaration."""

    name: str
    keys: List[TableKey] = field(default_factory=list)
    actions: List[str] = field(default_factory=list)
    default_action: Optional[Tuple[str, List[int]]] = None  # (action, args)
    size: int = 1024


# Runtime match specs mirror P4Runtime:
#   EXACT   -> int
#   TERNARY -> (value, mask)
#   LPM     -> (prefix, prefix_len)
#   RANGE   -> (lo, hi)
MatchSpec = Union[int, Tuple[int, int]]


@dataclass
class TableEntry:
    """An installed table entry (control-plane state)."""

    match: List[MatchSpec]
    action: str
    args: List[int] = field(default_factory=list)
    priority: int = 0

    def matches(self, table: Table, key_values: List[int]) -> bool:
        for key, spec, value in zip(table.keys, self.match, key_values):
            if key.kind is MatchKind.EXACT:
                if value != spec:
                    return False
            elif key.kind is MatchKind.TERNARY:
                tvalue, tmask = spec  # type: ignore[misc]
                if (value & tmask) != (tvalue & tmask):
                    return False
            elif key.kind is MatchKind.LPM:
                prefix, plen = spec  # type: ignore[misc]
                width = 32
                mask = ((1 << plen) - 1) << (width - plen) if plen else 0
                if (value & mask) != (prefix & mask):
                    return False
            elif key.kind is MatchKind.RANGE:
                lo, hi = spec  # type: ignore[misc]
                if not lo <= value <= hi:
                    return False
        return True


# ---------------------------------------------------------------------------
# Parser specification
# ---------------------------------------------------------------------------

@dataclass
class Extract:
    """Extract one header from the wire and bind it to ``bind``."""

    bind: str
    htype: HeaderType


@dataclass
class ExtractStack:
    """Extract a header stack: keep extracting while ``loop_field`` == 0.

    Bind names are ``{bind}{i}`` for i = 0..max_depth-1, mirroring the
    unrolled representation the Indus compiler uses for lists.
    """

    bind: str
    htype: HeaderType
    loop_field: str  # e.g. 'bos'
    max_depth: int = 8


@dataclass
class Transition:
    """Select the next state on a field value (None value = default)."""

    next_state: str
    field_path: Optional[str] = None
    value: Optional[int] = None


@dataclass
class ParserState:
    name: str
    extracts: List[Union[Extract, ExtractStack]] = field(default_factory=list)
    transitions: List[Transition] = field(default_factory=list)


@dataclass
class ParserSpec:
    """A declarative parse graph starting at ``start``."""

    states: List[ParserState] = field(default_factory=list)
    start: str = "start"

    def state(self, name: str) -> ParserState:
        for s in self.states:
            if s.name == name:
                return s
        raise KeyError(f"no parser state {name!r}")


ACCEPT = "accept"
REJECT_STATE = "reject"


# ---------------------------------------------------------------------------
# Registers and the program
# ---------------------------------------------------------------------------

@dataclass
class RegisterDef:
    name: str
    width: int
    size: int = 1


@dataclass
class P4Program:
    """A complete P4 program in IR form."""

    name: str
    parser: ParserSpec = field(default_factory=ParserSpec)
    metadata: List[Tuple[str, int]] = field(default_factory=list)
    registers: List[RegisterDef] = field(default_factory=list)
    actions: Dict[str, Action] = field(default_factory=dict)
    tables: Dict[str, Table] = field(default_factory=dict)
    ingress: List[P4Stmt] = field(default_factory=list)
    egress: List[P4Stmt] = field(default_factory=list)
    # Deparser emit order over bind names; invalid binds are skipped and
    # any unparsed tail is appended.
    emit_order: List[str] = field(default_factory=list)

    def add_action(self, action: Action) -> Action:
        if action.name in self.actions:
            raise ValueError(f"duplicate action {action.name!r}")
        self.actions[action.name] = action
        return action

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        return table

    def add_register(self, reg: RegisterDef) -> RegisterDef:
        self.registers.append(reg)
        return reg

    def metadata_width(self) -> int:
        return sum(width for _, width in self.metadata)

    def header_types(self) -> List[HeaderType]:
        """All header types reachable from the parser, deduplicated."""
        seen: Dict[str, HeaderType] = {}
        for state in self.parser.states:
            for ex in state.extracts:
                seen.setdefault(ex.htype.name, ex.htype)
        return list(seen.values())

    def bind_types(self) -> Dict[str, HeaderType]:
        """Map bind name -> header type (stacks expanded to slots)."""
        binds: Dict[str, HeaderType] = {}
        for state in self.parser.states:
            for ex in state.extracts:
                if isinstance(ex, Extract):
                    binds[ex.bind] = ex.htype
                else:
                    for i in range(ex.max_depth):
                        binds[f"{ex.bind}{i}"] = ex.htype
        return binds


def walk_stmts(stmts: Sequence[P4Stmt]):
    """Yield every statement in a body, recursing into if-branches."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, IfStmt):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, ApplyTable):
            yield from walk_stmts(stmt.hit_body)
            yield from walk_stmts(stmt.miss_body)


def walk_exprs(expr: P4Expr):
    """Yield every sub-expression of ``expr`` including itself."""
    yield expr
    if isinstance(expr, UnExpr):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, BinExpr):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)


def _stmt_mutates_headers(stmt: P4Stmt) -> bool:
    if isinstance(stmt, AssignStmt):
        return stmt.dest.startswith("hdr.")
    if isinstance(stmt, RegisterRead):
        return stmt.dest.startswith("hdr.")
    if isinstance(stmt, (SetValid, SetInvalid, PopSourceRoute)):
        return True
    if isinstance(stmt, ExternCall):
        return True  # externs get the raw context; assume the worst
    return False


def mutates_headers(program: P4Program) -> bool:
    """Whether any reachable statement can modify a header instance.

    Used for copy elision: a program that provably never writes header
    fields or validity bits can process a packet that *shares* its
    ``Header`` objects with the original (only the packet shell is
    copied), skipping the per-header deep copy on the hot path.
    """
    bodies = [program.ingress, program.egress]
    bodies.extend(action.body for action in program.actions.values())
    return any(_stmt_mutates_headers(stmt)
               for body in bodies for stmt in walk_stmts(body))
