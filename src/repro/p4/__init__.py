"""P4 substrate: a P4-16–like IR, a behavioral model (bmv2 stand-in),
and a pretty-printer to P4-16 source text."""

from . import ir
from .bmv2 import (Bmv2Switch, BoundedLog, DigestMessage, DROP_PORT,
                   PacketContext, P4RuntimeError, StandardMetadata)
from .fastpath import FastPath
from .pretty import count_loc, format_expr, render

__all__ = [
    "Bmv2Switch", "BoundedLog", "DigestMessage", "DROP_PORT", "FastPath",
    "P4RuntimeError", "PacketContext", "StandardMetadata", "count_loc",
    "format_expr", "ir", "render",
]
