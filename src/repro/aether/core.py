"""The mobile core's session management (PFCP-style interface).

Per the paper, the 3GPP PFCP interface "does not allow to specify
application filtering rules globally for a slice.  Instead, rules are
sent to ONOS on a per-client basis" — so on every attach the core looks
up the slice configuration *at that moment* and ships a per-client copy
of the rules to the controller, plus (when a Hydra deployment is
present) to the Hydra control application that maintains the
``filtering_actions`` dictionary of the Figure 9 checker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..runtime.deployment import HydraDeployment
from .onos import ClientRecord, OnosController
from .portal import DENY, FilterRule, OperatorPortal

DENY_ACTION = 1
ALLOW_ACTION = 2


class HydraControlApp:
    """The 'simple control plane application that runs atop ONOS' from
    Section 5.2: it mirrors each attaching client's filtering rules into
    the checker's ``filtering_actions`` control dictionary.

    Key layout matches Figure 9: (ue_ipv4_addr, app_ip_proto,
    app_ipv4_addr, app_l4_port) -> 1=deny / 2=allow.
    """

    def __init__(self, deployment: HydraDeployment):
        self.deployment = deployment

    def on_attach(self, ue_ip: int, rules: List[FilterRule]) -> None:
        for rule in rules:
            value = DENY_ACTION if rule.action == DENY else ALLOW_ACTION
            self.deployment.dict_put_ranges(
                "filtering_actions",
                [
                    (ue_ip, ue_ip),
                    rule.proto_range(),
                    rule.addr_range(),
                    tuple(rule.l4_port),
                ],
                value,
                priority=rule.priority,
            )

    def on_detach(self, ue_ip: int) -> None:
        """Remove the client's filtering_actions entries (all entries
        whose UE component is exactly this address)."""
        compiled, decl = self.deployment._resolve_control(
            "filtering_actions")
        for bmv2 in self.deployment.switches.values():
            for table in compiled.control_tables[decl.name]:
                stale = [e for e in bmv2.entries[table]
                         if e.match and e.match[0] == (ue_ip, ue_ip)]
                for entry in stale:
                    bmv2.delete_entry(table, entry)


class MobileCore:
    """4G/5G core session management against the portal + ONOS."""

    def __init__(self, portal: OperatorPortal, onos: OnosController,
                 hydra_app: Optional[HydraControlApp] = None):
        self.portal = portal
        self.onos = onos
        self.hydra_app = hydra_app
        self._teids = itertools.count(100)
        self.attachments: Dict[str, ClientRecord] = {}

    def attach(self, imsi: str, ue_ip: int) -> ClientRecord:
        """Handle a client attach request.

        Allocates GTP TEIDs, snapshots the slice's *current* rules, and
        pushes per-client state to ONOS and to the Hydra control app.
        """
        slice_name = self.portal.slice_of(imsi)
        if slice_name is None:
            raise ValueError(f"IMSI {imsi} is not provisioned in any slice")
        rules = self.portal.rules_for(imsi)
        uplink_teid = next(self._teids)
        downlink_teid = uplink_teid + 1000
        record = self.onos.handle_attach(
            imsi=imsi, slice_name=slice_name, ue_ip=ue_ip,
            uplink_teid=uplink_teid, downlink_teid=downlink_teid,
            rules=rules,
        )
        if self.hydra_app is not None:
            self.hydra_app.on_attach(ue_ip, rules)
        self.attachments[imsi] = record
        return record

    def detach(self, imsi: str) -> None:
        """Handle a client detach: tear down its user-plane state and
        the Hydra control entries mirroring its rules."""
        record = self.attachments.pop(imsi, None)
        if record is None:
            raise ValueError(f"IMSI {imsi} is not attached")
        self.onos.handle_detach(imsi)
        if self.hydra_app is not None:
            self.hydra_app.on_detach(record.ue_ip)
