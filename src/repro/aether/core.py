"""The mobile core's session management (PFCP-style interface).

Per the paper, the 3GPP PFCP interface "does not allow to specify
application filtering rules globally for a slice.  Instead, rules are
sent to ONOS on a per-client basis" — so on every attach the core looks
up the slice configuration *at that moment* and ships a per-client copy
of the rules to the controller, plus (when a Hydra deployment is
present) to the Hydra control application that maintains the
``filtering_actions`` dictionary of the Figure 9 checker.

The bulk paths (:meth:`MobileCore.attach_many` /
:meth:`MobileCore.detach_many`) carry the same semantics as a loop of
single calls but batch the table programming per switch, which is what
makes million-subscriber churn tractable: one bulk control-plane call
per (switch, table) per batch instead of one index invalidation per
rule row.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..net.topology import EDGE
from ..p4 import ir
from ..runtime.deployment import HydraDeployment
from .onos import AttachSpec, ClientRecord, OnosController
from .portal import DENY, FilterRule, OperatorPortal

DENY_ACTION = 1
ALLOW_ACTION = 2


class HydraControlApp:
    """The 'simple control plane application that runs atop ONOS' from
    Section 5.2: it mirrors each attaching client's filtering rules into
    the checker's ``filtering_actions`` control dictionary.

    Key layout matches Figure 9: (ue_ipv4_addr, app_ip_proto,
    app_ipv4_addr, app_l4_port) -> 1=deny / 2=allow.

    The app owns the rows it installs: per-UE entry handles are kept so
    detach removes exactly that UE's rows without scanning the table.
    ``edge_only=True`` (the scaled deployments) installs rows only on
    edge switches — the checker evaluates at the last hop, which is
    always an edge, so spine copies of the dictionary are dead weight.
    """

    def __init__(self, deployment: HydraDeployment,
                 edge_only: bool = False):
        self.deployment = deployment
        self.edge_only = edge_only
        compiled, decl = deployment._resolve_control("filtering_actions")
        self._tables = list(compiled.control_tables[decl.name])
        self._hit_actions = {table: compiled.dict_hit_action(decl.name,
                                                             table)
                             for table in self._tables}
        names = [name for name, spec in deployment.topology.switches.items()
                 if not edge_only or spec.role == EDGE]
        self._switches = [(name, deployment.switches[name])
                          for name in names]
        self._installed: Dict[int, List[Tuple[str, str,
                                              ir.TableEntry]]] = {}

    def on_attach(self, ue_ip: int, rules: List[FilterRule]) -> None:
        self.on_attach_many([(ue_ip, rules)])

    def on_attach_many(self,
                       items: Sequence[Tuple[int, List[FilterRule]]]
                       ) -> None:
        """Mirror a batch of clients' rules into ``filtering_actions``,
        one bulk insert per (switch, table)."""
        refresh = [ue_ip for ue_ip, _ in items if ue_ip in self._installed]
        if refresh:
            # Replace semantics, as dict_put_ranges had: a re-attach of
            # a live UE address supersedes its previous rows.
            self.on_detach_many(refresh)
        rows: List[Tuple[list, List[int], int]] = []
        owners: List[int] = []
        for ue_ip, rules in items:
            self._installed.setdefault(ue_ip, [])
            for rule in rules:
                value = DENY_ACTION if rule.action == DENY else ALLOW_ACTION
                match = [
                    (ue_ip, ue_ip),
                    rule.proto_range(),
                    rule.addr_range(),
                    tuple(rule.l4_port),
                ]
                rows.append((match, [value], rule.priority))
                owners.append(ue_ip)
        for name, bmv2 in self._switches:
            for table in self._tables:
                action = self._hit_actions[table]
                # match lists are shared across switches (entries are
                # distinguished by identity, and match specs are never
                # mutated after install) — halves row memory.
                created = bmv2.insert_entries(
                    table, [(match, action, args, priority)
                            for match, args, priority in rows])
                installed = self._installed
                for ue_ip, entry in zip(owners, created):
                    installed[ue_ip].append((name, table, entry))

    def on_detach(self, ue_ip: int) -> None:
        """Remove the client's filtering_actions entries."""
        self.on_detach_many([ue_ip])

    def on_detach_many(self, ue_ips: Sequence[int]) -> None:
        grouped: Dict[Tuple[str, str], List[ir.TableEntry]] = {}
        for ue_ip in ue_ips:
            for name, table, entry in self._installed.pop(ue_ip, ()):
                grouped.setdefault((name, table), []).append(entry)
        switches = dict(self._switches)
        for (name, table), entries in grouped.items():
            switches[name].delete_entries(table, entries)


class MobileCore:
    """4G/5G core session management against the portal + ONOS."""

    def __init__(self, portal: OperatorPortal, onos: OnosController,
                 hydra_app: Optional[HydraControlApp] = None):
        self.portal = portal
        self.onos = onos
        self.hydra_app = hydra_app
        self._teids = itertools.count(100)
        self.attachments: Dict[str, ClientRecord] = {}

    def attach(self, imsi: str, ue_ip: int) -> ClientRecord:
        """Handle a client attach request.

        Allocates GTP TEIDs, snapshots the slice's *current* rules, and
        pushes per-client state to ONOS and to the Hydra control app.
        """
        return self.attach_many([(imsi, ue_ip)])[0]

    def attach_many(self,
                    requests: Sequence[Tuple[str, int]]
                    ) -> List[ClientRecord]:
        """Handle a batch of attach requests (bulk PFCP-style churn).

        Semantically a loop of :meth:`attach`; the table programming is
        batched per switch so the fabric absorbs the whole batch with
        one control-plane operation per table.
        """
        specs: List[AttachSpec] = []
        for imsi, ue_ip in requests:
            slice_name = self.portal.slice_of(imsi)
            if slice_name is None:
                raise ValueError(
                    f"IMSI {imsi} is not provisioned in any slice")
            rules = self.portal.rules_for(imsi)
            uplink_teid = next(self._teids)
            downlink_teid = uplink_teid + 1000
            specs.append(AttachSpec(
                imsi=imsi, slice_name=slice_name, ue_ip=ue_ip,
                uplink_teid=uplink_teid, downlink_teid=downlink_teid,
                rules=tuple(rules)))
        records = self.onos.handle_attach_many(specs)
        if self.hydra_app is not None:
            self.hydra_app.on_attach_many(
                [(spec.ue_ip, list(spec.rules)) for spec in specs])
        for record in records:
            self.attachments[record.imsi] = record
        return records

    def detach(self, imsi: str) -> None:
        """Handle a client detach: tear down its user-plane state and
        the Hydra control entries mirroring its rules."""
        self.detach_many([imsi])

    def detach_many(self, imsis: Sequence[str]) -> None:
        """Handle a batch of detach requests; deletions are batched per
        (switch, table)."""
        records = []
        for imsi in imsis:
            record = self.attachments.pop(imsi, None)
            if record is None:
                raise ValueError(f"IMSI {imsi} is not attached")
            records.append(record)
        self.onos.handle_detach_many(imsis)
        if self.hydra_app is not None:
            self.hydra_app.on_detach_many(
                [record.ue_ip for record in records])
