"""An ONOS-like SDN controller managing the UPF tables.

This model reproduces the table-management behaviour behind the bug of
Section 5.2.  To save TCAM, entries in the **Applications** table are
shared by all clients of a slice: the controller keeps an app-id cache
keyed by the *exact rule pattern* (prefix, proto, port range, priority).
When a client attaches, each of its rules resolves to an app id —
reusing a cached id when the pattern is identical, otherwise allocating
a fresh id and installing a new Applications entry.  **Terminations**
entries are installed only for the attaching client.

The bug: after the operator edits a rule (different pattern and/or
priority), the next attach allocates a *new, higher-priority* app id.
Packets from previously attached clients now classify to the new app id,
for which they have no Terminations entry — and the default action of
Terminations is drop.  Traffic that the policy allows is silently
discarded, exactly the behaviour Hydra's checker reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..p4.bmv2 import Bmv2Switch
from .portal import ALLOW, FilterRule

# Application-id 0 is "unknown" (table miss); allocation starts at 1.
_FIRST_APP_ID = 1

AppKey = Tuple[str, Tuple[int, int], Optional[int], Tuple[int, int], int]


@dataclass
class ClientRecord:
    """Controller-side state for one attached client."""

    client_id: int
    imsi: str
    slice_name: str
    ue_ip: int
    uplink_teid: int
    downlink_teid: int
    app_ids: List[int] = field(default_factory=list)


class OnosController:
    """Installs and maintains UPF table entries on the fabric."""

    def __init__(self, upf_switches: Dict[str, Bmv2Switch]):
        self.upf_switches = dict(upf_switches)
        self._app_ids: Dict[AppKey, int] = {}
        self._next_app_id = _FIRST_APP_ID
        self._next_client_id = 1
        self._slice_ids: Dict[str, int] = {}
        self.clients: Dict[str, ClientRecord] = {}

    def slice_id(self, slice_name: str) -> int:
        """Numeric id for a slice (allocated on first use)."""
        if slice_name not in self._slice_ids:
            self._slice_ids[slice_name] = len(self._slice_ids) + 1
        return self._slice_ids[slice_name]

    # -- app-id management (the shared Applications table) -----------------

    @staticmethod
    def _app_key(slice_name: str, rule: FilterRule) -> AppKey:
        return (slice_name, rule.ip_prefix, rule.proto, rule.l4_port,
                rule.priority)

    def _app_id_for(self, slice_name: str, rule: FilterRule) -> int:
        """Resolve a rule pattern to an app id, installing a shared
        Applications entry on first use."""
        key = self._app_key(slice_name, rule)
        existing = self._app_ids.get(key)
        if existing is not None:
            return existing
        app_id = self._next_app_id
        self._next_app_id += 1
        self._app_ids[key] = app_id
        sid = self.slice_id(slice_name)
        match = [(sid, sid), rule.addr_range(), tuple(rule.l4_port),
                 rule.proto_range()]
        for bmv2 in self.upf_switches.values():
            bmv2.insert_entry("applications", match, "set_app_id", [app_id],
                              priority=rule.priority)
        return app_id

    # -- attach handling (per-client PFCP-style rule delivery) ----------------

    def handle_attach(self, imsi: str, slice_name: str, ue_ip: int,
                      uplink_teid: int, downlink_teid: int,
                      rules: List[FilterRule]) -> ClientRecord:
        """Install user-plane state for a newly attached client.

        ``rules`` is the per-client copy of the slice's filtering rules,
        as delivered over the PFCP-style interface at attach time.
        """
        if imsi in self.clients:
            raise ValueError(f"IMSI {imsi} is already attached")
        client_id = self._next_client_id
        self._next_client_id += 1
        record = ClientRecord(client_id=client_id, imsi=imsi,
                              slice_name=slice_name, ue_ip=ue_ip,
                              uplink_teid=uplink_teid,
                              downlink_teid=downlink_teid)
        sid = self.slice_id(slice_name)
        for bmv2 in self.upf_switches.values():
            bmv2.insert_entry("uplink_sessions", [uplink_teid],
                              "set_session_uplink", [client_id, sid])
            bmv2.insert_entry("downlink_sessions", [ue_ip],
                              "set_session_downlink",
                              [client_id, sid, downlink_teid])
        for rule in rules:
            app_id = self._app_id_for(slice_name, rule)
            record.app_ids.append(app_id)
            action = "term_forward" if rule.action == ALLOW else "term_drop"
            for bmv2 in self.upf_switches.values():
                bmv2.insert_entry("terminations", [client_id, app_id], action)
        self.clients[imsi] = record
        return record

    def handle_detach(self, imsi: str) -> ClientRecord:
        """Remove a client's user-plane state.

        Sessions and the client's Terminations entries are removed.
        Shared Applications entries are left installed (they may serve
        other clients of the slice) — faithfully mirroring the real
        controller, where app-entry garbage collection is a separate
        concern.
        """
        record = self.clients.pop(imsi, None)
        if record is None:
            raise ValueError(f"IMSI {imsi} is not attached")
        for bmv2 in self.upf_switches.values():
            for table, predicate in (
                ("uplink_sessions",
                 lambda e: e.match == [record.uplink_teid]),
                ("downlink_sessions",
                 lambda e: e.match == [record.ue_ip]),
                ("terminations",
                 lambda e: e.match[0] == record.client_id),
            ):
                for entry in [e for e in bmv2.entries[table]
                              if predicate(e)]:
                    bmv2.delete_entry(table, entry)
        return record

    def client(self, imsi: str) -> ClientRecord:
        return self.clients[imsi]

    def applications_entries(self) -> int:
        """Installed Applications entries (per switch)."""
        any_switch = next(iter(self.upf_switches.values()))
        return len(any_switch.entries["applications"])
