"""An ONOS-like SDN controller managing the UPF tables.

This model reproduces the table-management behaviour behind the bug of
Section 5.2.  To save TCAM, entries in the **Applications** table are
shared by all clients of a slice: the controller keeps an app-id cache
keyed by the *exact rule pattern* (prefix, proto, port range, priority).
When a client attaches, each of its rules resolves to an app id —
reusing a cached id when the pattern is identical, otherwise allocating
a fresh id and installing a new Applications entry.  **Terminations**
entries are installed only for the attaching client.

The bug: after the operator edits a rule (different pattern and/or
priority), the next attach allocates a *new, higher-priority* app id.
Packets from previously attached clients now classify to the new app id,
for which they have no Terminations entry — and the default action of
Terminations is drop.  Traffic that the policy allows is silently
discarded, exactly the behaviour Hydra's checker reports.

Scaling notes (the million-subscriber path):

* Every per-client table row installed at attach time is remembered as
  ``(switch, table, entry)`` handles on the :class:`ClientRecord`, so
  detach deletes exactly those rows — O(own rows), never a scan over
  every subscriber's entries.
* Shared Applications entries are reference-counted per app id and
  released only when the *last* referencing subscriber detaches (the
  interned pattern is forgotten with them, so a later attach
  re-installs cleanly).
* :meth:`handle_attach_many` / :meth:`handle_detach_many` batch table
  inserts and deletes per switch — one bulk control-plane call per
  table instead of one index invalidation per row — which is what keeps
  PFCP-style churn amortized over the execution engines' incremental
  table indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..p4 import ir
from ..p4.bmv2 import Bmv2Switch
from .capacity import AetherCapacity, CapacityError, MAX_APP_IDS
from .portal import ALLOW, FilterRule

# Application-id 0 is "unknown" (table miss); allocation starts at 1.
_FIRST_APP_ID = 1

AppKey = Tuple[str, Tuple[int, int], Optional[int], Tuple[int, int], int]


@dataclass
class ClientRecord:
    """Controller-side state for one attached client."""

    client_id: int
    imsi: str
    slice_name: str
    ue_ip: int
    uplink_teid: int
    downlink_teid: int
    app_ids: List[int] = field(default_factory=list)
    # Handles to every table row installed for this client:
    # (switch name, table name, entry).  Detach deletes these and only
    # these — no scan over other subscribers' entries.
    entries: List[Tuple[str, str, ir.TableEntry]] = \
        field(default_factory=list, repr=False)


@dataclass(frozen=True)
class AttachSpec:
    """One client's attach request, as delivered over PFCP."""

    imsi: str
    slice_name: str
    ue_ip: int
    uplink_teid: int
    downlink_teid: int
    rules: Tuple[FilterRule, ...]


class OnosController:
    """Installs and maintains UPF table entries on the fabric."""

    def __init__(self, upf_switches: Dict[str, Bmv2Switch],
                 capacity: Optional[AetherCapacity] = None):
        self.upf_switches = dict(upf_switches)
        self.capacity = capacity
        self._app_ids: Dict[AppKey, int] = {}
        self._next_app_id = _FIRST_APP_ID
        self._next_client_id = 1
        self._slice_ids: Dict[str, int] = {}
        self.clients: Dict[str, ClientRecord] = {}
        # Shared-entry bookkeeping: per app id, how many attached
        # subscribers reference it, the interned pattern it came from,
        # and its per-switch Applications entry handles.
        self._app_refs: Dict[int, int] = {}
        self._app_key_of: Dict[int, AppKey] = {}
        self._app_entries: Dict[int, List[Tuple[str, ir.TableEntry]]] = {}

    def slice_id(self, slice_name: str) -> int:
        """Numeric id for a slice (allocated on first use)."""
        if slice_name not in self._slice_ids:
            self._slice_ids[slice_name] = len(self._slice_ids) + 1
        return self._slice_ids[slice_name]

    # -- app-id management (the shared Applications table) -----------------

    @staticmethod
    def _app_key(slice_name: str, rule: FilterRule) -> AppKey:
        return (slice_name, rule.ip_prefix, rule.proto, rule.l4_port,
                rule.priority)

    def _app_id_for(self, slice_name: str, rule: FilterRule) -> int:
        """Resolve a rule pattern to an app id, installing a shared
        Applications entry on first use."""
        key = self._app_key(slice_name, rule)
        existing = self._app_ids.get(key)
        if existing is not None:
            return existing
        app_id = self._next_app_id
        if app_id > MAX_APP_IDS:
            raise CapacityError(
                f"app-id space exhausted ({MAX_APP_IDS} distinct "
                "rule patterns; app_id is an 8-bit field)")
        self._next_app_id += 1
        self._app_ids[key] = app_id
        self._app_key_of[app_id] = key
        self._app_refs[app_id] = 0
        sid = self.slice_id(slice_name)
        match = [(sid, sid), rule.addr_range(), tuple(rule.l4_port),
                 rule.proto_range()]
        handles: List[Tuple[str, ir.TableEntry]] = []
        for name, bmv2 in self.upf_switches.items():
            entry = bmv2.insert_entry("applications", match, "set_app_id",
                                      [app_id], priority=rule.priority)
            handles.append((name, entry))
        self._app_entries[app_id] = handles
        return app_id

    def _release_app_ids(self, app_ids: Iterable[int]) -> None:
        """Drop one subscriber reference per distinct app id; an id
        whose last reference goes away has its shared Applications
        entries uninstalled and its interned pattern forgotten."""
        for app_id in set(app_ids):
            remaining = self._app_refs.get(app_id)
            if remaining is None:
                continue
            remaining -= 1
            if remaining > 0:
                self._app_refs[app_id] = remaining
                continue
            del self._app_refs[app_id]
            key = self._app_key_of.pop(app_id, None)
            if key is not None:
                self._app_ids.pop(key, None)
            for switch_name, entry in self._app_entries.pop(app_id, ()):
                self.upf_switches[switch_name].delete_entry(
                    "applications", entry)

    # -- attach handling (per-client PFCP-style rule delivery) ----------------

    def handle_attach(self, imsi: str, slice_name: str, ue_ip: int,
                      uplink_teid: int, downlink_teid: int,
                      rules: List[FilterRule]) -> ClientRecord:
        """Install user-plane state for a newly attached client.

        ``rules`` is the per-client copy of the slice's filtering rules,
        as delivered over the PFCP-style interface at attach time.
        """
        return self.handle_attach_many([AttachSpec(
            imsi=imsi, slice_name=slice_name, ue_ip=ue_ip,
            uplink_teid=uplink_teid, downlink_teid=downlink_teid,
            rules=tuple(rules))])[0]

    def handle_attach_many(self,
                           specs: Sequence[AttachSpec]
                           ) -> List[ClientRecord]:
        """Install user-plane state for a batch of attaching clients.

        Table inserts are batched per switch: the whole batch costs one
        ``insert_entries`` call per (switch, table), so the execution
        engines fold the rows into their live indexes instead of
        rebuilding once per client.
        """
        seen = set()
        for spec in specs:
            if spec.imsi in self.clients or spec.imsi in seen:
                raise ValueError(f"IMSI {spec.imsi} is already attached")
            seen.add(spec.imsi)
        if self.capacity is not None:
            budget = self.capacity.max_sessions
            if len(self.clients) + len(specs) > budget:
                raise CapacityError(
                    f"attach of {len(specs)} client(s) exceeds the "
                    f"session budget ({len(self.clients)} attached, "
                    f"capacity {budget})")
        records: List[ClientRecord] = []
        session_rows: List[Tuple[list, str, Optional[List[int]], int]] = []
        downlink_rows: List[Tuple[list, str, Optional[List[int]], int]] = []
        term_rows: List[Tuple[list, str, Optional[List[int]], int]] = []
        # Row -> owning record, in emission order (per-switch created
        # entries come back in the same order).
        session_owner: List[ClientRecord] = []
        downlink_owner: List[ClientRecord] = []
        term_owner: List[ClientRecord] = []
        for spec in specs:
            client_id = self._next_client_id
            self._next_client_id += 1
            record = ClientRecord(client_id=client_id, imsi=spec.imsi,
                                  slice_name=spec.slice_name,
                                  ue_ip=spec.ue_ip,
                                  uplink_teid=spec.uplink_teid,
                                  downlink_teid=spec.downlink_teid)
            sid = self.slice_id(spec.slice_name)
            session_rows.append(([spec.uplink_teid], "set_session_uplink",
                                 [client_id, sid], 0))
            session_owner.append(record)
            downlink_rows.append(([spec.ue_ip], "set_session_downlink",
                                  [client_id, sid, spec.downlink_teid], 0))
            downlink_owner.append(record)
            for rule in spec.rules:
                app_id = self._app_id_for(spec.slice_name, rule)
                record.app_ids.append(app_id)
                action = ("term_forward" if rule.action == ALLOW
                          else "term_drop")
                term_rows.append(([client_id, app_id], action, None, 0))
                term_owner.append(record)
            for app_id in set(record.app_ids):
                self._app_refs[app_id] = self._app_refs.get(app_id, 0) + 1
            records.append(record)
        for name, bmv2 in self.upf_switches.items():
            for table, rows, owners in (
                    ("uplink_sessions", session_rows, session_owner),
                    ("downlink_sessions", downlink_rows, downlink_owner),
                    ("terminations", term_rows, term_owner)):
                if not rows:
                    continue
                created = bmv2.insert_entries(table, rows)
                for owner, entry in zip(owners, created):
                    owner.entries.append((name, table, entry))
        for record in records:
            self.clients[record.imsi] = record
        return records

    def handle_detach(self, imsi: str) -> ClientRecord:
        """Remove a client's user-plane state.

        Sessions and the client's Terminations entries are removed via
        the handles recorded at attach time.  Shared Applications
        entries are reference-counted: they stay installed while any
        other subscriber of the slice still resolves to them, and are
        released (pattern forgotten, entries uninstalled) when the last
        referencing subscriber detaches.
        """
        return self.handle_detach_many([imsi])[0]

    def handle_detach_many(self, imsis: Sequence[str]) -> List[ClientRecord]:
        """Remove a batch of clients' user-plane state, batching entry
        deletions per (switch, table)."""
        records: List[ClientRecord] = []
        for imsi in imsis:
            record = self.clients.pop(imsi, None)
            if record is None:
                raise ValueError(f"IMSI {imsi} is not attached")
            records.append(record)
        grouped: Dict[Tuple[str, str], List[ir.TableEntry]] = {}
        for record in records:
            for switch_name, table, entry in record.entries:
                grouped.setdefault((switch_name, table), []).append(entry)
            record.entries = []
        for (switch_name, table), entries in grouped.items():
            self.upf_switches[switch_name].delete_entries(table, entries)
        for record in records:
            self._release_app_ids(record.app_ids)
        return records

    def client(self, imsi: str) -> ClientRecord:
        return self.clients[imsi]

    def app_refcount(self, app_id: int) -> int:
        """Attached subscribers currently referencing a shared app id
        (0 once released)."""
        return self._app_refs.get(app_id, 0)

    def applications_entries(self) -> int:
        """Installed Applications entries (per switch)."""
        any_switch = next(iter(self.upf_switches.values()))
        return len(any_switch.entries["applications"])
