"""An explicit capacity model for the scaled Aether control plane.

Scaling ``repro.aether`` to ~10^6 concurrent sessions is a memory and
table-sizing exercise before it is a speed exercise: every session owns
session-table rows, termination rows, and checker dictionary rows on
each UPF leaf, and the behavioural switches hold all of them in Python
object form.  :class:`AetherCapacity` makes those budgets explicit — it
sizes the UPF program's tables, declares the hard wire-format ceilings
(``app_id`` is an 8-bit field; ``client_id`` is 32-bit), bounds the
per-switch digest log window, and estimates resident memory — and
:class:`CapacityError` is raised when an attach would exceed the
declared session budget instead of silently degrading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

# Wire-format ceilings from the UPF program's metadata declarations.
MAX_APP_IDS = (1 << 8) - 1        # app_id is bit<8>; 0 means "unknown"
MAX_CLIENT_IDS = (1 << 32) - 1    # client_id is bit<32>
UE_PREFIX_LEN = 12                # 172.16.0.0/12 -> 2^20 UE addresses
MAX_UE_INDEX = (1 << (32 - UE_PREFIX_LEN)) - 1

# Rough per-row resident cost of one installed TableEntry (object +
# match/args lists) plus its slot in the engine's hash index, measured
# on CPython 3.11.  Used for the estimate only — never enforced.
_BYTES_PER_ENTRY = 400
_BYTES_PER_SESSION_STATE = 700    # ClientRecord + handles + portal rows


class CapacityError(RuntimeError):
    """An attach would exceed the deployment's declared session budget."""


@dataclass(frozen=True)
class AetherCapacity:
    """Declared budgets for one Aether deployment.

    ``max_sessions``
        Concurrent attached subscribers the control plane accepts;
        attach number ``max_sessions + 1`` raises :class:`CapacityError`.
    ``rules_per_session``
        Expected filtering rules delivered per client (sizes the
        terminations and checker-dictionary tables).
    ``edge_only_filtering``
        Install the checker's ``filtering_actions`` rows only on edge
        switches.  The compiled checker evaluates at the last hop — an
        edge — so spine copies of the dictionary are never consulted;
        skipping them halves filtering-row memory on the 2x2 fabric.
    ``digest_log_window``
        Per-switch bounded-log capacity for checker digests: the sized
        register window that keeps switch-side memory flat regardless
        of how many packets a soak replays.
    """

    max_sessions: int
    rules_per_session: int = 4
    edge_only_filtering: bool = True
    digest_log_window: int = 1024

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_sessions > MAX_UE_INDEX:
            raise ValueError(
                f"max_sessions {self.max_sessions} exceeds the "
                f"172.16.0.0/{UE_PREFIX_LEN} UE address plan "
                f"({MAX_UE_INDEX} addresses)")
        if self.rules_per_session < 1:
            raise ValueError("rules_per_session must be >= 1")

    # -- table sizing ------------------------------------------------------

    @property
    def session_table_size(self) -> int:
        return self.max_sessions

    @property
    def terminations_table_size(self) -> int:
        return self.max_sessions * self.rules_per_session

    @property
    def applications_table_size(self) -> int:
        # Shared (interned) entries: bounded by the 8-bit app_id space,
        # not by the subscriber count.
        return MAX_APP_IDS

    @property
    def filtering_table_size(self) -> int:
        return self.max_sessions * self.rules_per_session

    # -- memory model ------------------------------------------------------

    def estimate_bytes(self, upf_switches: int = 2,
                       filtering_switches: int = 2) -> int:
        """Estimated resident bytes for a fully attached deployment:
        per-switch table rows plus per-session controller state."""
        per_switch_rows = (2 * self.max_sessions          # sessions up+down
                           + self.terminations_table_size)
        rows = upf_switches * per_switch_rows
        if self.edge_only_filtering:
            rows += filtering_switches * self.filtering_table_size
        else:
            # Checker rows also land on the spines.
            rows += 2 * filtering_switches * self.filtering_table_size
        return (rows * _BYTES_PER_ENTRY
                + self.max_sessions * _BYTES_PER_SESSION_STATE)

    def describe(self) -> Dict[str, Any]:
        """The capacity model as a JSON-ready dict (stamped into the
        soak benchmark report)."""
        return {
            "max_sessions": self.max_sessions,
            "rules_per_session": self.rules_per_session,
            "edge_only_filtering": self.edge_only_filtering,
            "digest_log_window": self.digest_log_window,
            "max_app_ids": MAX_APP_IDS,
            "ue_prefix_len": UE_PREFIX_LEN,
            "max_ue_index": MAX_UE_INDEX,
            "session_table_size": self.session_table_size,
            "terminations_table_size": self.terminations_table_size,
            "applications_table_size": self.applications_table_size,
            "filtering_table_size": self.filtering_table_size,
            "estimated_bytes": self.estimate_bytes(),
        }
