"""The Aether User Plane Function (UPF) as a P4 program.

Implements the table structure of Figure 11 on our P4 IR:

* **Sessions** — identifies the packet direction and the client.
  Uplink packets arrive GTP-U encapsulated from a small cell and match
  on the tunnel TEID (then get decapsulated); downlink packets match on
  the UE address in the outer IPv4 header (and get re-encapsulated
  toward the cell).
* **Applications** — shared across clients of a slice; matches the
  application pattern (IPv4 prefix as a range, L4 port range, protocol)
  with priorities and assigns ``app_id``.
* **Terminations** — exact on (client id, app id); forwards or drops.
  The default is drop: a (client, app) pair with no entry gets dropped,
  which is the mechanism behind the bug of Section 5.2.

Dropping is recorded in ``meta.upf_drop_flag`` and enforced at the end
of the egress pipeline, which is what lets the Hydra application-
filtering checker (Figure 9) observe the forwarding decision through its
``to_be_dropped`` header variable.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import (ETH_TYPE_IPV4, ETHERNET, GTPU, IP_PROTO_TCP,
                          IP_PROTO_UDP, IPV4, TCP, UDP, UDP_PORT_GTPU)
from ..p4 import ir
from .capacity import AetherCapacity

APP_ID_UNKNOWN = 0
DIRECTION_UPLINK = 1
DIRECTION_DOWNLINK = 2


def _upf_ecmp_hash(ctx) -> None:
    """Flow hash extern for ECMP uplink selection (deterministic)."""
    import zlib

    parts = (
        ctx.meta.get("route_dst", 0),
        ctx.meta.get("app_addr", 0),
        ctx.meta.get("app_port", 0),
        ctx.meta.get("app_proto", 0),
    )
    blob = ",".join(str(p) for p in parts).encode()
    width = ctx.meta.get("ecmp_width", 1) or 1
    ctx.write("meta.ecmp_select", zlib.crc32(blob) % width)


# Deterministic function of parser-derived metadata with no side
# effects: eligible for flow-level fast-forwarding (repro.net).
_upf_ecmp_hash.pure = True


def upf_program(name: str = "fabric_upf",
                capacity: Optional[AetherCapacity] = None) -> ir.P4Program:
    """Build the UPF forwarding program.

    ``capacity`` sizes the session/terminations/applications tables
    from the deployment's declared budgets instead of the small-testbed
    defaults (the resource model of a switch that really holds a
    million subscribers' state).
    """
    sessions_size = capacity.session_table_size if capacity else 1024
    terms_size = capacity.terminations_table_size if capacity else 4096
    apps_size = capacity.applications_table_size if capacity else 1024
    program = ir.P4Program(name=name)
    program.parser = ir.ParserSpec(states=[
        ir.ParserState(
            name="start",
            extracts=[ir.Extract("ethernet", ETHERNET)],
            transitions=[
                ir.Transition("parse_ipv4", "hdr.ethernet.eth_type",
                              ETH_TYPE_IPV4),
                ir.Transition(ir.ACCEPT),
            ],
        ),
        ir.ParserState(
            name="parse_ipv4",
            extracts=[ir.Extract("ipv4", IPV4)],
            transitions=[
                ir.Transition("parse_udp", "hdr.ipv4.protocol", IP_PROTO_UDP),
                ir.Transition("parse_tcp", "hdr.ipv4.protocol", IP_PROTO_TCP),
                ir.Transition(ir.ACCEPT),
            ],
        ),
        ir.ParserState(
            name="parse_udp",
            extracts=[ir.Extract("udp", UDP)],
            transitions=[
                ir.Transition("parse_gtpu", "hdr.udp.dst_port",
                              UDP_PORT_GTPU),
                ir.Transition(ir.ACCEPT),
            ],
        ),
        ir.ParserState(
            name="parse_tcp",
            extracts=[ir.Extract("tcp", TCP)],
            transitions=[ir.Transition(ir.ACCEPT)],
        ),
        ir.ParserState(
            name="parse_gtpu",
            extracts=[ir.Extract("gtpu", GTPU)],
            transitions=[ir.Transition("parse_inner_ipv4")],
        ),
        ir.ParserState(
            name="parse_inner_ipv4",
            extracts=[ir.Extract("inner_ipv4", IPV4)],
            transitions=[
                ir.Transition("parse_inner_udp", "hdr.inner_ipv4.protocol",
                              IP_PROTO_UDP),
                ir.Transition("parse_inner_tcp", "hdr.inner_ipv4.protocol",
                              IP_PROTO_TCP),
                ir.Transition(ir.ACCEPT),
            ],
        ),
        ir.ParserState(
            name="parse_inner_udp",
            extracts=[ir.Extract("inner_udp", UDP)],
            transitions=[ir.Transition(ir.ACCEPT)],
        ),
        ir.ParserState(
            name="parse_inner_tcp",
            extracts=[ir.Extract("inner_tcp", TCP)],
            transitions=[ir.Transition(ir.ACCEPT)],
        ),
    ])
    program.emit_order = ["ethernet", "ipv4", "udp", "gtpu",
                          "inner_ipv4", "inner_udp", "inner_tcp", "tcp"]
    program.metadata = [
        ("direction", 8),
        ("client_id", 32),
        ("slice_id", 8),
        ("app_id", 8),
        ("app_addr", 32),
        ("app_port", 16),
        ("app_proto", 8),
        ("route_dst", 32),
        ("encap_teid", 32),
        ("do_encap", 1),
        ("upf_drop_flag", 1),
        ("ecmp_width", 8),
        ("ecmp_select", 16),
    ]

    # ---------------- Sessions ----------------
    uplink_session = ir.Action(
        name="set_session_uplink",
        params=[("client_id", 32), ("slice_id", 8)],
        body=[
            ir.AssignStmt("meta.direction", ir.Const(DIRECTION_UPLINK, 8)),
            ir.AssignStmt("meta.client_id", ir.FieldRef("param.client_id")),
            ir.AssignStmt("meta.slice_id", ir.FieldRef("param.slice_id")),
            # GTP-U decapsulation: strip the outer headers.
            ir.SetInvalid("ipv4"),
            ir.SetInvalid("udp"),
            ir.SetInvalid("gtpu"),
        ],
    )
    downlink_session = ir.Action(
        name="set_session_downlink",
        params=[("client_id", 32), ("slice_id", 8), ("teid", 32)],
        body=[
            ir.AssignStmt("meta.direction", ir.Const(DIRECTION_DOWNLINK, 8)),
            ir.AssignStmt("meta.client_id", ir.FieldRef("param.client_id")),
            ir.AssignStmt("meta.slice_id", ir.FieldRef("param.slice_id")),
            ir.AssignStmt("meta.encap_teid", ir.FieldRef("param.teid")),
            ir.AssignStmt("meta.do_encap", ir.Const(1, 1)),
        ],
    )
    session_miss = ir.Action(name="session_miss", params=[], body=[])
    program.add_action(uplink_session)
    program.add_action(downlink_session)
    program.add_action(session_miss)
    program.add_table(ir.Table(
        name="uplink_sessions",
        keys=[ir.TableKey("hdr.gtpu.teid", ir.MatchKind.EXACT)],
        actions=[uplink_session.name],
        default_action=(session_miss.name, []),
        size=sessions_size,
    ))
    program.add_table(ir.Table(
        name="downlink_sessions",
        keys=[ir.TableKey("hdr.ipv4.dst_addr", ir.MatchKind.EXACT)],
        actions=[downlink_session.name],
        default_action=(session_miss.name, []),
        size=sessions_size,
    ))

    # ---------------- Applications ----------------
    set_app_id = ir.Action(
        name="set_app_id", params=[("app_id", 8)],
        body=[ir.AssignStmt("meta.app_id", ir.FieldRef("param.app_id"))],
    )
    app_miss = ir.Action(
        name="app_miss", params=[],
        body=[ir.AssignStmt("meta.app_id", ir.Const(APP_ID_UNKNOWN, 8))],
    )
    program.add_action(set_app_id)
    program.add_action(app_miss)
    # The slice id is a key so that identical application patterns in
    # different slices resolve to their own (shared-within-slice) ids.
    program.add_table(ir.Table(
        name="applications",
        keys=[
            ir.TableKey("meta.slice_id", ir.MatchKind.RANGE),
            ir.TableKey("meta.app_addr", ir.MatchKind.RANGE),
            ir.TableKey("meta.app_port", ir.MatchKind.RANGE),
            ir.TableKey("meta.app_proto", ir.MatchKind.RANGE),
        ],
        actions=[set_app_id.name],
        default_action=(app_miss.name, []),
        size=apps_size,
    ))

    # ---------------- Terminations ----------------
    term_forward = ir.Action(name="term_forward", params=[], body=[])
    term_drop = ir.Action(
        name="term_drop", params=[],
        body=[ir.AssignStmt("meta.upf_drop_flag", ir.Const(1, 1))],
    )
    program.add_action(term_forward)
    program.add_action(term_drop)
    program.add_table(ir.Table(
        name="terminations",
        keys=[
            ir.TableKey("meta.client_id", ir.MatchKind.EXACT),
            ir.TableKey("meta.app_id", ir.MatchKind.EXACT),
        ],
        actions=[term_forward.name, term_drop.name],
        # A (client, app) pair with no entry is dropped.
        default_action=(term_drop.name, []),
        size=terms_size,
    ))

    # ---------------- Routing (with ECMP over the spines) ----------------
    route = ir.Action(
        name="upf_route", params=[("port", 9)],
        body=[ir.AssignStmt("standard_metadata.egress_spec",
                            ir.FieldRef("param.port"))],
    )
    route_ecmp = ir.Action(
        name="upf_route_ecmp", params=[("width", 8)],
        body=[ir.AssignStmt("meta.ecmp_width", ir.FieldRef("param.width"))],
    )
    ecmp_port = ir.Action(
        name="upf_ecmp_port", params=[("port", 9)],
        body=[ir.AssignStmt("standard_metadata.egress_spec",
                            ir.FieldRef("param.port"))],
    )
    route_drop = ir.Action(name="upf_route_drop", params=[],
                           body=[ir.MarkToDrop()])
    program.add_action(route)
    program.add_action(route_ecmp)
    program.add_action(ecmp_port)
    program.add_action(route_drop)
    program.add_table(ir.Table(
        name="upf_routes",
        keys=[ir.TableKey("meta.route_dst", ir.MatchKind.LPM)],
        actions=[route.name, route_ecmp.name],
        default_action=(route_drop.name, []),
        size=1024,
    ))
    program.add_table(ir.Table(
        name="upf_ecmp_table",
        keys=[ir.TableKey("meta.ecmp_select", ir.MatchKind.EXACT)],
        actions=[ecmp_port.name],
        default_action=(route_drop.name, []),
        size=64,
    ))

    uplink = ir.BinExpr("==", ir.FieldRef("meta.direction"),
                        ir.Const(DIRECTION_UPLINK, 8))
    program.ingress = [
        # Direction + client identification (and GTP-U decap on uplink).
        ir.IfStmt(
            cond=ir.ValidRef("gtpu"),
            then_body=[ir.ApplyTable("uplink_sessions")],
            else_body=[ir.IfStmt(
                cond=ir.ValidRef("ipv4"),
                then_body=[ir.ApplyTable("downlink_sessions")],
            )],
        ),
        # Application key extraction (mirrors the Figure 9 init block).
        ir.IfStmt(
            cond=uplink,
            then_body=[
                ir.AssignStmt("meta.app_addr",
                              ir.FieldRef("hdr.inner_ipv4.dst_addr")),
                ir.AssignStmt("meta.app_proto",
                              ir.FieldRef("hdr.inner_ipv4.protocol")),
                ir.AssignStmt("meta.route_dst",
                              ir.FieldRef("hdr.inner_ipv4.dst_addr")),
                ir.IfStmt(
                    cond=ir.ValidRef("inner_udp"),
                    then_body=[ir.AssignStmt(
                        "meta.app_port",
                        ir.FieldRef("hdr.inner_udp.dst_port"))],
                    else_body=[ir.IfStmt(
                        cond=ir.ValidRef("inner_tcp"),
                        then_body=[ir.AssignStmt(
                            "meta.app_port",
                            ir.FieldRef("hdr.inner_tcp.dst_port"))],
                    )],
                ),
            ],
            else_body=[
                ir.AssignStmt("meta.app_addr",
                              ir.FieldRef("hdr.ipv4.src_addr")),
                ir.AssignStmt("meta.app_proto",
                              ir.FieldRef("hdr.ipv4.protocol")),
                ir.AssignStmt("meta.route_dst",
                              ir.FieldRef("hdr.ipv4.dst_addr")),
                ir.IfStmt(
                    cond=ir.ValidRef("udp"),
                    then_body=[ir.AssignStmt(
                        "meta.app_port", ir.FieldRef("hdr.udp.src_port"))],
                    else_body=[ir.IfStmt(
                        cond=ir.ValidRef("tcp"),
                        then_body=[ir.AssignStmt(
                            "meta.app_port",
                            ir.FieldRef("hdr.tcp.src_port"))],
                    )],
                ),
            ],
        ),
        # Application filtering applies only to UPF traffic (a session
        # matched); plain fabric transit is routed unfiltered.
        ir.IfStmt(
            cond=ir.BinExpr("!=", ir.FieldRef("meta.direction"),
                            ir.Const(0, 8)),
            then_body=[
                ir.ApplyTable("applications"),
                ir.ApplyTable("terminations"),
            ],
        ),
        ir.AssignStmt("meta.ecmp_width", ir.Const(0, 8)),
        ir.ApplyTable("upf_routes"),
        ir.IfStmt(
            cond=ir.BinExpr(">", ir.FieldRef("meta.ecmp_width"),
                            ir.Const(0, 8)),
            then_body=[
                ir.ExternCall("upf_ecmp_hash", _upf_ecmp_hash),
                ir.ApplyTable("upf_ecmp_table"),
            ],
        ),
    ]
    # Downlink GTP-U encapsulation happens in egress: the original
    # IPv4/L4 headers are copied into the inner binds and the outer
    # headers are rewritten as the tunnel toward the small cell.
    def copy_header(dst_bind: str, src_bind: str, htype) -> list:
        return [ir.AssignStmt(f"hdr.{dst_bind}.{f.name}",
                              ir.FieldRef(f"hdr.{src_bind}.{f.name}"))
                for f in htype.fields]

    encap_body = (
        [ir.SetValid("inner_ipv4")]
        + copy_header("inner_ipv4", "ipv4", IPV4)
        + [ir.IfStmt(
            cond=ir.ValidRef("udp"),
            then_body=([ir.SetValid("inner_udp")]
                       + copy_header("inner_udp", "udp", UDP)),
            else_body=[ir.IfStmt(
                cond=ir.ValidRef("tcp"),
                then_body=([ir.SetValid("inner_tcp")]
                           + copy_header("inner_tcp", "tcp", TCP)
                           + [ir.SetInvalid("tcp")]),
            )],
        )]
        + [
            # Outer tunnel headers: IPv4/UDP/GTP-U toward the cell.
            ir.AssignStmt("hdr.ipv4.protocol", ir.Const(IP_PROTO_UDP, 8)),
            ir.AssignStmt("hdr.ipv4.ttl", ir.Const(64, 8)),
            ir.SetValid("udp"),
            ir.AssignStmt("hdr.udp.src_port", ir.Const(UDP_PORT_GTPU, 16)),
            ir.AssignStmt("hdr.udp.dst_port", ir.Const(UDP_PORT_GTPU, 16)),
            ir.SetValid("gtpu"),
            ir.AssignStmt("hdr.gtpu.version", ir.Const(1, 3)),
            ir.AssignStmt("hdr.gtpu.pt", ir.Const(1, 1)),
            ir.AssignStmt("hdr.gtpu.msgtype", ir.Const(255, 8)),
            ir.AssignStmt("hdr.gtpu.teid", ir.FieldRef("meta.encap_teid")),
        ]
    )
    # The drop decision is enforced at the end of egress so runtime
    # checkers can observe it first.
    program.egress = [
        ir.IfStmt(
            cond=ir.BinExpr("==", ir.FieldRef("meta.do_encap"),
                            ir.Const(1, 1)),
            then_body=encap_body,
        ),
        ir.IfStmt(
            cond=ir.BinExpr("==", ir.FieldRef("meta.upf_drop_flag"),
                            ir.Const(1, 1)),
            then_body=[ir.MarkToDrop()],
        ),
    ]
    return program
