"""The Aether edge testbed (Figure 10): small cells, edge app servers,
a 2x2 leaf-spine fabric running the UPF program, the operator portal,
the mobile core, the ONOS controller, and the Hydra application-
filtering checker deployed across the fabric.

Conventions:

* ``h1`` (leaf1 port 1) is the small cell — clients' traffic enters
  GTP-U encapsulated from here;
* ``h2`` (leaf1 port 2) is the edge application server;
* ``h3`` (leaf2 port 1) stands in for the Internet;
* UEs get addresses in 172.16.0.0/12 (2^20 addresses — enough for the
  million-subscriber soak), routed toward the cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..net.packet import (Packet, ip, make_gtpu_encapsulated, make_udp,
                          make_tcp)
from ..net.topology import Topology, leaf_spine
from ..obs import Observability
from ..properties import compile_property
from ..runtime.deployment import HydraDeployment
from ..runtime.reports import HydraReport
from .capacity import AetherCapacity, MAX_UE_INDEX, UE_PREFIX_LEN
from .core import HydraControlApp, MobileCore
from .onos import OnosController
from .portal import OperatorPortal
from .upf import upf_program

UE_SUBNET = (172 << 24) | (16 << 16)          # 172.16.0.0/12
N3_CELL = ip(192, 168, 0, 1)
N3_UPF = ip(192, 168, 0, 100)

CELL_HOST = "h1"
SERVER_HOST = "h2"
INTERNET_HOST = "h3"


def ue_address(index: int) -> int:
    """The address assigned to the index-th UE (1-based)."""
    if not 1 <= index <= MAX_UE_INDEX:
        raise ValueError(
            f"UE index {index} outside the 172.16.0.0/{UE_PREFIX_LEN} "
            f"plan [1, {MAX_UE_INDEX}]")
    return UE_SUBNET | index


@dataclass
class TrafficResult:
    """Outcome of one traffic exchange."""

    delivered: bool
    new_reports: List[HydraReport]


class AetherTestbed:
    """A complete Aether deployment with Hydra application filtering.

    ``capacity`` opts into the scaled control plane: an explicit
    :class:`AetherCapacity` (or a plain session count) sizes the UPF
    tables and the digest log window, bounds attaches, and keeps the
    checker's dictionary rows off the spines.  ``engine`` / ``batched``
    / ``obs`` pass through to the deployment — the soak benchmark runs
    ``engine="codegen"`` with the batched traffic plane.
    """

    def __init__(self,
                 capacity: Optional[Union[AetherCapacity, int]] = None,
                 engine: str = "fast",
                 batched: bool = False,
                 obs: Optional[Observability] = None):
        if isinstance(capacity, int):
            capacity = AetherCapacity(max_sessions=capacity)
        self.capacity = capacity
        self.topology: Topology = leaf_spine(num_leaves=2, num_spines=2,
                                             hosts_per_leaf=2)
        self.compiled = compile_property("application_filtering")
        forwarding = {name: upf_program(f"fabric_upf_{name}",
                                        capacity=capacity)
                      for name in self.topology.switches}
        self.deployment = HydraDeployment(self.topology, self.compiled,
                                          forwarding, engine=engine,
                                          batched=batched, obs=obs)
        self.network = self.deployment.network
        if capacity is not None:
            # Re-seat each switch's digest ring at the declared window:
            # the sized buffer that keeps per-switch memory flat however
            # many packets a soak replays.
            from ..p4.bmv2 import BoundedLog
            for bmv2 in self.deployment.switches.values():
                bmv2.digests = BoundedLog(capacity.digest_log_window,
                                          on_evict=bmv2._on_digest_evict)
        self._install_routes()

        self.portal = OperatorPortal()
        upf_switches = {name: self.deployment.switches[name]
                        for name, spec in self.topology.switches.items()
                        if spec.is_leaf}
        self.onos = OnosController(upf_switches, capacity=capacity)
        self.hydra_app = HydraControlApp(
            self.deployment,
            edge_only=capacity.edge_only_filtering if capacity else False)
        self.core = MobileCore(self.portal, self.onos, self.hydra_app)
        self._ue_ips: Dict[str, int] = {}
        # ip -> host reverse index (maintained once; host sets are
        # static after construction), replacing the per-packet scan
        # over topology.hosts.
        self._ip_to_host: Dict[int, str] = {
            spec.ipv4: name for name, spec in self.topology.hosts.items()
        }

    # -- fabric routing ----------------------------------------------------

    def _install_routes(self) -> None:
        hosts = self.topology.hosts

        def routes_for(switch: str) -> List[Tuple[Tuple[int, int], int]]:
            if switch == "leaf1":
                return [
                    ((hosts["h1"].ipv4, 32), 1),
                    ((hosts["h2"].ipv4, 32), 2),
                    ((UE_SUBNET, UE_PREFIX_LEN), 1),  # UEs behind the cell
                    ((0, 0), 3),                 # default via spine1
                ]
            if switch == "leaf2":
                return [
                    ((hosts["h3"].ipv4, 32), 1),
                    ((hosts["h4"].ipv4, 32), 2),
                    ((0, 0), 3),
                ]
            # Spines: leaf subnets + UE subnet toward leaf1.
            return [
                (((10 << 24) | (1 << 8), 24), 1),
                (((10 << 24) | (2 << 8), 24), 2),
                ((UE_SUBNET, UE_PREFIX_LEN), 1),
            ]

        for switch in self.topology.switches:
            bmv2 = self.deployment.switches[switch]
            for prefix, port in routes_for(switch):
                bmv2.insert_entry("upf_routes", [prefix], "upf_route", [port])

    # -- control-plane workflow -----------------------------------------------

    def provision_slice(self, name: str, rules) -> None:
        self.portal.create_slice(name, rules)

    def attach(self, imsi: str, ue_index: int) -> int:
        """Attach a client; returns its UE address."""
        ue_ip = ue_address(ue_index)
        self.core.attach(imsi, ue_ip)
        self._ue_ips[imsi] = ue_ip
        return ue_ip

    def attach_many(self, pairs: List[Tuple[str, int]]) -> List[int]:
        """Bulk attach: ``(imsi, ue_index)`` pairs; returns UE addresses.

        Table programming for the whole batch is grouped per switch, so
        attach cost is amortized across the batch (the PFCP-style churn
        path of the soak benchmark).
        """
        requests = [(imsi, ue_address(index)) for imsi, index in pairs]
        self.core.attach_many(requests)
        for imsi, ue_ip in requests:
            self._ue_ips[imsi] = ue_ip
        return [ue_ip for _, ue_ip in requests]

    def detach_many(self, imsis: List[str]) -> None:
        """Bulk detach, grouping table deletions per switch."""
        self.core.detach_many(imsis)
        for imsi in imsis:
            self._ue_ips.pop(imsi, None)

    # -- traffic --------------------------------------------------------------

    def _host_for_ip(self, addr: int) -> Optional[str]:
        return self._ip_to_host.get(addr)

    def uplink_packet(self, imsi: str, app_ip: int, dport: int,
                      proto: str = "udp",
                      payload_len: int = 100) -> Packet:
        """The GTP-U encapsulated uplink packet a UE's cell would emit
        (used directly by the soak benchmark's replay loops)."""
        record = self.onos.client(imsi)
        ue_ip = self._ue_ips[imsi]
        if proto == "udp":
            inner = make_udp(ue_ip, app_ip, 40000, dport,
                             payload_len=payload_len)
        else:
            inner = make_tcp(ue_ip, app_ip, 40000, dport,
                             payload_len=payload_len)
        return make_gtpu_encapsulated(N3_CELL, N3_UPF,
                                      record.uplink_teid, inner)

    def downlink_packet(self, src_ip: int, imsi: str, sport: int,
                        proto: str = "udp",
                        payload_len: int = 100) -> Packet:
        """A downlink packet from an application server toward a UE."""
        ue_ip = self._ue_ips[imsi]
        if proto == "udp":
            return make_udp(src_ip, ue_ip, sport, 40000,
                            payload_len=payload_len)
        return make_tcp(src_ip, ue_ip, sport, 40000,
                        payload_len=payload_len)

    def send_uplink(self, imsi: str, app_ip: int, dport: int,
                    proto: str = "udp", payload_len: int = 100
                    ) -> TrafficResult:
        """A UE sends one uplink packet via its cell's GTP-U tunnel."""
        packet = self.uplink_packet(imsi, app_ip, dport, proto=proto,
                                    payload_len=payload_len)
        return self._send(CELL_HOST, packet, app_ip)

    def send_downlink(self, src_ip: int, imsi: str, sport: int,
                      proto: str = "udp",
                      payload_len: int = 100) -> TrafficResult:
        """An application sends one downlink packet toward a UE."""
        src_host = self._host_for_ip(src_ip)
        if src_host is None:
            raise ValueError("downlink source must be a known host")
        packet = self.downlink_packet(src_ip, imsi, sport, proto=proto,
                                      payload_len=payload_len)
        return self._send(src_host, packet, dest_is_ue=True)

    def _send(self, src_host: str, packet: Packet,
              dst_ip: Optional[int] = None,
              dest_is_ue: bool = False) -> TrafficResult:
        before = len(self.deployment.reports)
        if dest_is_ue:
            dest_host = CELL_HOST
        else:
            dest_host = self._host_for_ip(dst_ip) if dst_ip else None
        dest = self.network.host(dest_host) if dest_host else None
        rx_before = dest.rx_count if dest else 0
        self.network.host(src_host).send(packet)
        self.network.run()
        delivered = bool(dest and dest.rx_count > rx_before)
        new_reports = self.deployment.reports[before:]
        return TrafficResult(delivered=delivered, new_reports=new_reports)

    @property
    def reports(self) -> List[HydraReport]:
        return self.deployment.reports

    def detach(self, imsi: str) -> None:
        """Detach a client, removing its sessions, terminations, and
        Hydra filtering entries."""
        self.core.detach(imsi)
        self._ue_ips.pop(imsi, None)
