"""The Aether edge testbed (Figure 10): small cells, edge app servers,
a 2x2 leaf-spine fabric running the UPF program, the operator portal,
the mobile core, the ONOS controller, and the Hydra application-
filtering checker deployed across the fabric.

Conventions:

* ``h1`` (leaf1 port 1) is the small cell — clients' traffic enters
  GTP-U encapsulated from here;
* ``h2`` (leaf1 port 2) is the edge application server;
* ``h3`` (leaf2 port 1) stands in for the Internet;
* UEs get addresses in 172.16.0.0/24, routed toward the cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.packet import (Packet, ip, make_gtpu_encapsulated, make_udp,
                          make_tcp)
from ..net.topology import Topology, leaf_spine
from ..properties import compile_property
from ..runtime.deployment import HydraDeployment
from ..runtime.reports import HydraReport
from .core import HydraControlApp, MobileCore
from .onos import OnosController
from .portal import OperatorPortal
from .upf import upf_program

UE_SUBNET = (172 << 24) | (16 << 16)          # 172.16.0.0/24
N3_CELL = ip(192, 168, 0, 1)
N3_UPF = ip(192, 168, 0, 100)

CELL_HOST = "h1"
SERVER_HOST = "h2"
INTERNET_HOST = "h3"


def ue_address(index: int) -> int:
    """The address assigned to the index-th UE (1-based)."""
    return UE_SUBNET | index


@dataclass
class TrafficResult:
    """Outcome of one traffic exchange."""

    delivered: bool
    new_reports: List[HydraReport]


class AetherTestbed:
    """A complete Aether deployment with Hydra application filtering."""

    def __init__(self):
        self.topology: Topology = leaf_spine(num_leaves=2, num_spines=2,
                                             hosts_per_leaf=2)
        self.compiled = compile_property("application_filtering")
        forwarding = {name: upf_program(f"fabric_upf_{name}")
                      for name in self.topology.switches}
        self.deployment = HydraDeployment(self.topology, self.compiled,
                                          forwarding)
        self.network = self.deployment.network
        self._install_routes()

        self.portal = OperatorPortal()
        upf_switches = {name: self.deployment.switches[name]
                        for name, spec in self.topology.switches.items()
                        if spec.is_leaf}
        self.onos = OnosController(upf_switches)
        self.hydra_app = HydraControlApp(self.deployment)
        self.core = MobileCore(self.portal, self.onos, self.hydra_app)
        self._ue_ips: Dict[str, int] = {}

    # -- fabric routing ----------------------------------------------------

    def _install_routes(self) -> None:
        hosts = self.topology.hosts

        def routes_for(switch: str) -> List[Tuple[Tuple[int, int], int]]:
            if switch == "leaf1":
                return [
                    ((hosts["h1"].ipv4, 32), 1),
                    ((hosts["h2"].ipv4, 32), 2),
                    ((UE_SUBNET, 24), 1),       # UEs live behind the cell
                    ((0, 0), 3),                 # default via spine1
                ]
            if switch == "leaf2":
                return [
                    ((hosts["h3"].ipv4, 32), 1),
                    ((hosts["h4"].ipv4, 32), 2),
                    ((0, 0), 3),
                ]
            # Spines: leaf subnets + UE subnet toward leaf1.
            return [
                (((10 << 24) | (1 << 8), 24), 1),
                (((10 << 24) | (2 << 8), 24), 2),
                ((UE_SUBNET, 24), 1),
            ]

        for switch in self.topology.switches:
            bmv2 = self.deployment.switches[switch]
            for prefix, port in routes_for(switch):
                bmv2.insert_entry("upf_routes", [prefix], "upf_route", [port])

    # -- control-plane workflow -----------------------------------------------

    def provision_slice(self, name: str, rules) -> None:
        self.portal.create_slice(name, rules)

    def attach(self, imsi: str, ue_index: int) -> int:
        """Attach a client; returns its UE address."""
        ue_ip = ue_address(ue_index)
        self.core.attach(imsi, ue_ip)
        self._ue_ips[imsi] = ue_ip
        return ue_ip

    # -- traffic --------------------------------------------------------------

    def _host_for_ip(self, addr: int) -> Optional[str]:
        for name, spec in self.topology.hosts.items():
            if spec.ipv4 == addr:
                return name
        return None

    def send_uplink(self, imsi: str, app_ip: int, dport: int,
                    proto: str = "udp", payload_len: int = 100
                    ) -> TrafficResult:
        """A UE sends one uplink packet via its cell's GTP-U tunnel."""
        record = self.onos.client(imsi)
        ue_ip = self._ue_ips[imsi]
        if proto == "udp":
            inner = make_udp(ue_ip, app_ip, 40000, dport,
                             payload_len=payload_len)
        else:
            inner = make_tcp(ue_ip, app_ip, 40000, dport,
                             payload_len=payload_len)
        packet = make_gtpu_encapsulated(N3_CELL, N3_UPF,
                                        record.uplink_teid, inner)
        return self._send(CELL_HOST, packet, app_ip)

    def send_downlink(self, src_ip: int, imsi: str, sport: int,
                      proto: str = "udp",
                      payload_len: int = 100) -> TrafficResult:
        """An application sends one downlink packet toward a UE."""
        ue_ip = self._ue_ips[imsi]
        src_host = self._host_for_ip(src_ip)
        if src_host is None:
            raise ValueError("downlink source must be a known host")
        if proto == "udp":
            packet = make_udp(src_ip, ue_ip, sport, 40000,
                              payload_len=payload_len)
        else:
            packet = make_tcp(src_ip, ue_ip, sport, 40000,
                              payload_len=payload_len)
        return self._send(src_host, packet, dest_is_ue=True)

    def _send(self, src_host: str, packet: Packet,
              dst_ip: Optional[int] = None,
              dest_is_ue: bool = False) -> TrafficResult:
        before = len(self.deployment.reports)
        if dest_is_ue:
            dest_host = CELL_HOST
        else:
            dest_host = self._host_for_ip(dst_ip) if dst_ip else None
        dest = self.network.host(dest_host) if dest_host else None
        rx_before = dest.rx_count if dest else 0
        self.network.host(src_host).send(packet)
        self.network.run()
        delivered = bool(dest and dest.rx_count > rx_before)
        new_reports = self.deployment.reports[before:]
        return TrafficResult(delivered=delivered, new_reports=new_reports)

    @property
    def reports(self) -> List[HydraReport]:
        return self.deployment.reports

    def detach(self, imsi: str) -> None:
        """Detach a client, removing its sessions, terminations, and
        Hydra filtering entries."""
        self.core.detach(imsi)
        self._ue_ips.pop(imsi, None)
