"""Aether substrate: the UPF P4 program, operator portal, mobile core,
ONOS-like controller, and the testbed for the Section 5.2 case study."""

from .capacity import AetherCapacity, CapacityError, MAX_APP_IDS, MAX_UE_INDEX
from .core import ALLOW_ACTION, DENY_ACTION, HydraControlApp, MobileCore
from .onos import AttachSpec, ClientRecord, OnosController
from .portal import (ALLOW, ANY_PORT, ANY_PREFIX, ANY_PROTO, DENY,
                     FilterRule, OperatorPortal, SliceConfig)
from .testbed import (AetherTestbed, CELL_HOST, INTERNET_HOST, SERVER_HOST,
                      TrafficResult, ue_address)
from .upf import (APP_ID_UNKNOWN, DIRECTION_DOWNLINK, DIRECTION_UPLINK,
                  upf_program)

__all__ = [
    "ALLOW", "ALLOW_ACTION", "ANY_PORT", "ANY_PREFIX", "ANY_PROTO",
    "APP_ID_UNKNOWN", "AetherCapacity", "AetherTestbed", "AttachSpec",
    "CELL_HOST", "CapacityError", "ClientRecord", "DENY", "DENY_ACTION",
    "DIRECTION_DOWNLINK", "DIRECTION_UPLINK", "FilterRule",
    "HydraControlApp", "INTERNET_HOST", "MAX_APP_IDS", "MAX_UE_INDEX",
    "MobileCore", "OnosController", "OperatorPortal", "SERVER_HOST",
    "SliceConfig", "TrafficResult", "ue_address", "upf_program",
]
