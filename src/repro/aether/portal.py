"""The Aether operator portal: slice configuration.

Operators define slices, each with a prioritized list of application
filtering rules of the form ``priority: ip-prefix : ip-proto : l4-port :
action`` (Section 5.2), and assign clients (IMSIs) to slices.  Updating
a slice's rules takes effect for *subsequently attaching* clients — the
portal itself does not re-program previously attached clients, which is
the precondition for the bug Hydra catches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

ALLOW = "allow"
DENY = "deny"

ANY_PORT: Tuple[int, int] = (0, 0xFFFF)
ANY_PROTO: Optional[int] = None
ANY_PREFIX: Tuple[int, int] = (0, 0)


@dataclass(frozen=True)
class FilterRule:
    """One application filtering rule.

    ``ip_prefix`` is (address, prefix_len); ``proto`` is an IP protocol
    number or None for any; ``l4_port`` is an inclusive (lo, hi) range.
    """

    priority: int
    ip_prefix: Tuple[int, int] = ANY_PREFIX
    proto: Optional[int] = ANY_PROTO
    l4_port: Tuple[int, int] = ANY_PORT
    action: str = DENY

    def __post_init__(self) -> None:
        if self.action not in (ALLOW, DENY):
            raise ValueError(f"bad action {self.action!r}")
        lo, hi = self.l4_port
        if lo > hi:
            raise ValueError(f"bad port range {self.l4_port}")

    def addr_range(self) -> Tuple[int, int]:
        """The prefix as an inclusive address range."""
        addr, plen = self.ip_prefix
        if plen == 0:
            return (0, 0xFFFFFFFF)
        mask = ((1 << plen) - 1) << (32 - plen)
        base = addr & mask
        return (base, base | (~mask & 0xFFFFFFFF))

    def proto_range(self) -> Tuple[int, int]:
        if self.proto is None:
            return (0, 0xFF)
        return (self.proto, self.proto)

    def matches(self, app_addr: int, proto: int, port: int) -> bool:
        lo, hi = self.addr_range()
        if not lo <= app_addr <= hi:
            return False
        plo, phi = self.proto_range()
        if not plo <= proto <= phi:
            return False
        rlo, rhi = self.l4_port
        return rlo <= port <= rhi


@dataclass
class SliceConfig:
    """A slice: a name, filtering rules, and member clients."""

    name: str
    rules: List[FilterRule] = field(default_factory=list)
    members: List[str] = field(default_factory=list)  # IMSIs

    def decide(self, app_addr: int, proto: int, port: int) -> str:
        """The intended action for an application key (highest priority
        matching rule wins; default deny)."""
        best: Optional[FilterRule] = None
        for rule in self.rules:
            if rule.matches(app_addr, proto, port):
                if best is None or rule.priority > best.priority:
                    best = rule
        return best.action if best is not None else DENY


class OperatorPortal:
    """Slice configuration state, as the operator sees it.

    Membership is held both as each slice's ``members`` list (the
    operator-facing view) and as an imsi -> slice reverse index, kept
    consistent by :meth:`add_member` / :meth:`remove_member`, so
    :meth:`slice_of` — on the hot attach path — is a dict lookup
    instead of a scan over every slice's member list.
    """

    def __init__(self):
        self.slices: Dict[str, SliceConfig] = {}
        self._member_slice: Dict[str, str] = {}

    def create_slice(self, name: str,
                     rules: Optional[List[FilterRule]] = None) -> SliceConfig:
        if name in self.slices:
            raise ValueError(f"slice {name!r} already exists")
        config = SliceConfig(name=name, rules=list(rules or []))
        self.slices[name] = config
        return config

    def add_member(self, slice_name: str, imsi: str) -> None:
        config = self._require(slice_name)
        if imsi in self._member_slice:
            raise ValueError(f"IMSI {imsi} is already in a slice")
        config.members.append(imsi)
        self._member_slice[imsi] = slice_name

    def add_members(self, slice_name: str, imsis: List[str]) -> None:
        """Bulk enrolment: one validation pass, then one extend."""
        config = self._require(slice_name)
        for imsi in imsis:
            if imsi in self._member_slice:
                raise ValueError(f"IMSI {imsi} is already in a slice")
        config.members.extend(imsis)
        for imsi in imsis:
            self._member_slice[imsi] = slice_name

    def remove_member(self, imsi: str) -> None:
        slice_name = self._member_slice.pop(imsi, None)
        if slice_name is None:
            raise ValueError(f"IMSI {imsi} is not in a slice")
        self.slices[slice_name].members.remove(imsi)

    def update_rules(self, slice_name: str,
                     rules: List[FilterRule]) -> None:
        """Replace a slice's rules.

        Note: this only changes portal state.  Rules reach the switches
        via the mobile core's per-client PFCP messages, i.e. only when a
        client attaches — already-attached clients keep their old rules.
        """
        self._require(slice_name).rules = list(rules)

    def slice_of(self, imsi: str) -> Optional[str]:
        return self._member_slice.get(imsi)

    def rules_for(self, imsi: str) -> List[FilterRule]:
        slice_name = self.slice_of(imsi)
        if slice_name is None:
            raise ValueError(f"IMSI {imsi} is not assigned to a slice")
        return list(self.slices[slice_name].rules)

    def _require(self, name: str) -> SliceConfig:
        if name not in self.slices:
            raise ValueError(f"unknown slice {name!r}")
        return self.slices[name]
