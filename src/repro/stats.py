"""Statistics helpers for the evaluation: Student/Welch t-tests (the
paper cites Gosset [23] for its latency comparison) and CDF utilities
for Figure 12b."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class TTestResult:
    """Outcome of a two-sample t-test."""

    statistic: float
    dof: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def mean(xs: Sequence[float]) -> float:
    return sum(xs) / len(xs)


def variance(xs: Sequence[float]) -> float:
    """Unbiased sample variance."""
    if len(xs) < 2:
        return 0.0
    mu = mean(xs)
    return sum((x - mu) ** 2 for x in xs) / (len(xs) - 1)


def _student_t_sf(t: float, dof: float) -> float:
    """Survival function of the t distribution.

    Uses scipy when available; otherwise falls back to the regularized
    incomplete beta function via a continued-fraction evaluation.
    """
    try:
        from scipy.stats import t as t_dist

        return float(t_dist.sf(t, dof))
    except ImportError:  # pragma: no cover - scipy is installed in CI
        x = dof / (dof + t * t)
        return 0.5 * _reg_inc_beta(dof / 2.0, 0.5, x)


def _reg_inc_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta I_x(a, b) (Lentz continued fraction)."""
    if x <= 0:
        return 0.0
    if x >= 1:
        return 1.0
    ln_beta = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
               + a * math.log(x) + b * math.log(1 - x))
    front = math.exp(ln_beta) / a
    f, c, d = 1.0, 1.0, 0.0
    for i in range(200):
        m = i // 2
        if i == 0:
            numerator = 1.0
        elif i % 2 == 0:
            numerator = m * (b - m) * x / ((a + 2 * m - 1) * (a + 2 * m))
        else:
            numerator = -((a + m) * (a + b + m) * x /
                          ((a + 2 * m) * (a + 2 * m + 1)))
        d = 1.0 + numerator * d
        d = 1.0 / d if abs(d) > 1e-30 else 1e30
        c = 1.0 + numerator / c if abs(c) > 1e-30 else 1e-30
        f *= c * d
        if abs(1.0 - c * d) < 1e-12:
            break
    result = front * (f - 1.0)
    if x < (a + 1) / (a + b + 2):
        return min(max(result, 0.0), 1.0)
    return min(max(1.0 - result, 0.0), 1.0)


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Welch's two-sample t-test (unequal variances), two-sided."""
    if len(a) < 2 or len(b) < 2:
        raise ValueError("both samples need at least two observations")
    va, vb = variance(a), variance(b)
    na, nb = len(a), len(b)
    se2 = va / na + vb / nb
    if se2 == 0:
        # Identical constant samples: no detectable difference.
        return TTestResult(statistic=0.0, dof=float(na + nb - 2), p_value=1.0)
    t = (mean(a) - mean(b)) / math.sqrt(se2)
    dof = se2 ** 2 / ((va / na) ** 2 / (na - 1) + (vb / nb) ** 2 / (nb - 1))
    p = 2.0 * _student_t_sf(abs(t), dof)
    return TTestResult(statistic=t, dof=dof, p_value=min(p, 1.0))


def student_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Student's pooled-variance two-sample t-test, two-sided."""
    if len(a) < 2 or len(b) < 2:
        raise ValueError("both samples need at least two observations")
    na, nb = len(a), len(b)
    sp2 = (((na - 1) * variance(a) + (nb - 1) * variance(b))
           / (na + nb - 2))
    if sp2 == 0:
        return TTestResult(statistic=0.0, dof=float(na + nb - 2), p_value=1.0)
    t = (mean(a) - mean(b)) / math.sqrt(sp2 * (1 / na + 1 / nb))
    dof = float(na + nb - 2)
    p = 2.0 * _student_t_sf(abs(t), dof)
    return TTestResult(statistic=t, dof=dof, p_value=min(p, 1.0))


def cdf_points(samples: Sequence[float],
               num_points: int = 0) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, probability) pairs (Figure 12b)."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    points = [(value, (i + 1) / n) for i, value in enumerate(ordered)]
    if num_points and n > num_points:
        step = n / num_points
        points = [points[min(int(i * step), n - 1)]
                  for i in range(num_points)]
        if points[-1] != (ordered[-1], 1.0):
            points.append((ordered[-1], 1.0))
    return points


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not samples:
        raise ValueError("empty sample")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
