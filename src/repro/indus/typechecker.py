"""Type checker for Indus.

Beyond conventional type checking, this module enforces the language
restrictions that make Indus programs compilable to high-speed hardware
and non-interfering with forwarding (Section 3.1 of the paper):

* ``header`` and ``control`` variables are **read-only**;
* all state is statically allocated (array/set capacities are compile-time
  constants — guaranteed syntactically — and loops iterate only over them,
  so all loops terminate);
* ``reject`` may appear only in the checker block (violations are enforced
  at the edge); ``report`` may appear anywhere;
* ``tele`` variables must have packable types (no dictionaries on the wire).

The checker decorates every expression node with its inferred type
(``node.ty``) and returns a :class:`CheckedProgram` carrying the symbol
table, which later phases (interpreter, compiler) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from . import ast
from .errors import IndusTypeError, SourceSpan
from .types import (ArrayType, BitType, BoolType, DictType, SetType,
                    TupleType, Type, BOOL)

# Builtin read-only context values available in every block.
BUILTIN_TYPES: Dict[str, Type] = {
    "last_hop": BOOL,
    "first_hop": BOOL,
    "packet_length": BitType(32),
    "hop_count": BitType(8),
    "switch_id": BitType(32),
}


@dataclass
class Symbol:
    """A resolved name: either a declared variable, a builtin, or a loop var."""

    name: str
    ty: Type
    kind: ast.VarKind
    decl: Optional[ast.Decl] = None
    is_builtin: bool = False
    is_loop_var: bool = False

    @property
    def writable(self) -> bool:
        return (not self.is_builtin and not self.is_loop_var
                and not self.kind.read_only)


@dataclass
class CheckedProgram:
    """A type-checked program plus its symbol table and usage summary."""

    program: ast.Program
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    # Names of variables written per block, used by the compiler to decide
    # table placement and by tests to assert non-interference.
    writes: Dict[str, Set[str]] = field(default_factory=dict)
    # Builtins actually referenced (drives generated metadata).
    used_builtins: Set[str] = field(default_factory=set)

    def symbol(self, name: str) -> Symbol:
        return self.symbols[name]


class TypeChecker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.symbols: Dict[str, Symbol] = {}
        self.loop_vars: Dict[str, Symbol] = {}
        self.writes: Dict[str, Set[str]] = {
            "init": set(), "telemetry": set(), "checker": set()
        }
        self.used_builtins: Set[str] = set()
        self.current_block = ""

    # -- entry point ------------------------------------------------------------

    def check(self) -> CheckedProgram:
        for decl in self.program.decls:
            self._check_decl(decl)
        for block_name, stmts in self.program.blocks:
            self.current_block = block_name
            for stmt in stmts:
                self._check_stmt(stmt)
        return CheckedProgram(
            program=self.program,
            symbols=self.symbols,
            writes=self.writes,
            used_builtins=self.used_builtins,
        )

    # -- declarations -------------------------------------------------------------

    def _check_decl(self, decl: ast.Decl) -> None:
        if decl.name in BUILTIN_TYPES:
            raise IndusTypeError(
                f"{decl.name!r} is a builtin and cannot be redeclared", decl.span
            )
        if decl.name in self.symbols:
            raise IndusTypeError(f"duplicate declaration of {decl.name!r}", decl.span)

        if decl.kind is ast.VarKind.TELE and not decl.ty.is_packable():
            raise IndusTypeError(
                f"tele variable {decl.name!r} has type {decl.ty}, which cannot "
                "travel on the packet",
                decl.span,
            )
        if decl.kind is ast.VarKind.HEADER:
            if not isinstance(decl.ty, (BitType, BoolType)):
                raise IndusTypeError(
                    f"header variable {decl.name!r} must be a scalar "
                    f"(bit<n> or bool), got {decl.ty}",
                    decl.span,
                )
            if decl.init is not None:
                raise IndusTypeError(
                    f"header variable {decl.name!r} is read-only and cannot "
                    "have an initializer",
                    decl.span,
                )
        if decl.kind is ast.VarKind.CONTROL and decl.init is not None:
            raise IndusTypeError(
                f"control variable {decl.name!r} is populated by the control "
                "plane and cannot have an initializer",
                decl.span,
            )
        if decl.kind is ast.VarKind.SENSOR:
            ok = isinstance(decl.ty, (BitType, BoolType)) or (
                isinstance(decl.ty, ArrayType)
                and isinstance(decl.ty.element, (BitType, BoolType))
            )
            if not ok:
                raise IndusTypeError(
                    f"sensor variable {decl.name!r} must map to registers "
                    f"(scalar or array of scalars), got {decl.ty}",
                    decl.span,
                )
        if decl.init is not None:
            init_ty = self._check_expr(decl.init, expected=self._init_expected(decl.ty))
            if not self._assignable(decl.ty, init_ty):
                raise IndusTypeError(
                    f"initializer for {decl.name!r} has type {init_ty}, "
                    f"expected {decl.ty}",
                    decl.span,
                )
        self.symbols[decl.name] = Symbol(decl.name, decl.ty, decl.kind, decl)

    @staticmethod
    def _init_expected(ty: Type) -> Optional[Type]:
        return ty if isinstance(ty, (BitType, BoolType)) else None

    # -- statements ------------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Pass):
            return
        if isinstance(stmt, ast.Reject):
            if self.current_block != "checker":
                raise IndusTypeError(
                    "reject is only allowed in the checker block (violations "
                    "are enforced at the network edge)",
                    stmt.span,
                )
            return
        if isinstance(stmt, ast.Report):
            if stmt.payload is not None:
                payload_ty = self._check_expr(stmt.payload)
                if isinstance(payload_ty, (DictType,)):
                    raise IndusTypeError(
                        "report payload cannot be a dictionary", stmt.span
                    )
            return
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt.target, stmt.value, stmt.span)
            return
        if isinstance(stmt, ast.AugAssign):
            target_ty = self._check_lvalue(stmt.target, stmt.span)
            if not isinstance(target_ty, BitType):
                raise IndusTypeError(
                    f"augmented assignment requires a bit<n> target, "
                    f"got {target_ty}",
                    stmt.span,
                )
            value_ty = self._check_expr(stmt.value, expected=target_ty)
            if not isinstance(value_ty, BitType):
                raise IndusTypeError(
                    f"augmented assignment value must be bit<n>, got {value_ty}",
                    stmt.span,
                )
            return
        if isinstance(stmt, ast.Push):
            target_ty = self._check_lvalue(stmt.target, stmt.span, for_push=True)
            if not isinstance(target_ty, ArrayType):
                raise IndusTypeError(
                    f"push target must be an array, got {target_ty}", stmt.span
                )
            value_ty = self._check_expr(
                stmt.value,
                expected=target_ty.element
                if isinstance(target_ty.element, (BitType, BoolType)) else None,
            )
            if not self._assignable(target_ty.element, value_ty):
                raise IndusTypeError(
                    f"cannot push {value_ty} onto {target_ty}", stmt.span
                )
            return
        if isinstance(stmt, ast.If):
            for cond, body in stmt.arms:
                cond_ty = self._check_expr(cond, expected=BOOL)
                if not isinstance(cond_ty, BoolType):
                    raise IndusTypeError(
                        f"if condition must be bool, got {cond_ty}", cond.span
                    )
                for inner in body:
                    self._check_stmt(inner)
            for inner in stmt.orelse:
                self._check_stmt(inner)
            return
        if isinstance(stmt, ast.For):
            self._check_for(stmt)
            return
        raise IndusTypeError(f"unknown statement {type(stmt).__name__}", stmt.span)

    def _check_for(self, stmt: ast.For) -> None:
        elem_types: List[Type] = []
        lengths: List[int] = []
        for iterable in stmt.iterables:
            it_ty = self._check_expr(iterable)
            if isinstance(it_ty, ArrayType):
                elem_types.append(it_ty.element)
                lengths.append(it_ty.capacity)
            elif isinstance(it_ty, SetType):
                elem_types.append(it_ty.element)
                lengths.append(it_ty.capacity)
            else:
                raise IndusTypeError(
                    f"for loop can only iterate over arrays or sets, got {it_ty} "
                    "(static bounds guarantee termination)",
                    iterable.span,
                )
        if len(set(lengths)) > 1:
            raise IndusTypeError(
                f"parallel for loop iterables have different capacities: {lengths}",
                stmt.span,
            )
        # Loop variables may shadow declared variables: Figure 2 of the
        # paper iterates with names that shadow its sensors.  Inside the
        # loop body the name resolves to the (read-only) loop variable.
        shadowed: Dict[str, Optional[Symbol]] = {}
        for name, elem_ty in zip(stmt.names, elem_types):
            shadowed[name] = self.loop_vars.get(name)
            sym = Symbol(name, elem_ty, ast.VarKind.LOCAL, is_loop_var=True)
            self.loop_vars[name] = sym
        try:
            for inner in stmt.body:
                self._check_stmt(inner)
        finally:
            for name, prev in shadowed.items():
                if prev is None:
                    del self.loop_vars[name]
                else:
                    self.loop_vars[name] = prev

    def _check_assign(self, target: ast.Expr, value: ast.Expr,
                      span: SourceSpan) -> None:
        target_ty = self._check_lvalue(target, span)
        expected = target_ty if isinstance(target_ty, (BitType, BoolType)) else None
        value_ty = self._check_expr(value, expected=expected)
        if not self._assignable(target_ty, value_ty):
            raise IndusTypeError(
                f"cannot assign {value_ty} to target of type {target_ty}", span
            )

    def _check_lvalue(self, target: ast.Expr, span: SourceSpan,
                      for_push: bool = False) -> Type:
        """Check a write target; returns its type and records the write."""
        if isinstance(target, ast.Var):
            sym = self._resolve(target.name, target.span)
            if sym.is_loop_var:
                raise IndusTypeError(
                    f"loop variable {target.name!r} is read-only", span
                )
            if not sym.writable:
                raise IndusTypeError(
                    f"{sym.kind.value} variable {target.name!r} is read-only",
                    span,
                )
            target.ty = sym.ty
            self.writes[self.current_block].add(target.name)
            return sym.ty
        if isinstance(target, ast.Index) and not for_push:
            base_ty = self._check_lvalue(target.base, span)
            if not isinstance(base_ty, ArrayType):
                raise IndusTypeError(
                    f"only array slots can be assigned through an index, "
                    f"got {base_ty}",
                    span,
                )
            index_ty = self._check_expr(target.index, expected=BitType(32))
            if not isinstance(index_ty, BitType):
                raise IndusTypeError(
                    f"array index must be bit<n>, got {index_ty}", span
                )
            target.ty = base_ty.element
            return base_ty.element
        raise IndusTypeError("invalid assignment target", span)

    # -- expressions ---------------------------------------------------------------------

    def _resolve(self, name: str, span: SourceSpan) -> Symbol:
        if name in self.loop_vars:
            return self.loop_vars[name]
        if name in self.symbols:
            return self.symbols[name]
        if name in BUILTIN_TYPES:
            if name == "last_hop" and self.current_block == "init":
                # The init block compiles into the *ingress* pipeline of
                # the first-hop switch, before forwarding has resolved an
                # egress port — but last-hop detection keys on the egress
                # port, so the value cannot exist yet in the data plane.
                raise IndusTypeError(
                    "last_hop is not available in the init block: init "
                    "runs at ingress of the first-hop switch, before the "
                    "egress port that identifies the last hop is known",
                    span,
                )
            self.used_builtins.add(name)
            return Symbol(name, BUILTIN_TYPES[name], ast.VarKind.HEADER,
                          is_builtin=True)
        raise IndusTypeError(f"undeclared variable {name!r}", span)

    def _check_expr(self, expr: ast.Expr,
                    expected: Optional[Type] = None) -> Type:
        ty = self._infer(expr, expected)
        expr.ty = ty
        return ty

    def _infer(self, expr: ast.Expr, expected: Optional[Type]) -> Type:
        if isinstance(expr, ast.IntLit):
            if isinstance(expected, BitType):
                if expr.value > expected.max_value:
                    raise IndusTypeError(
                        f"literal {expr.value} does not fit in {expected}",
                        expr.span,
                    )
                return expected
            if expr.value < 0:
                raise IndusTypeError(
                    "integer literals are unsigned bitstrings", expr.span
                )
            # Literals without a constraining context default to bit<32>
            # (wide enough that literal arithmetic never wraps surprisingly).
            return BitType(max(expr.value.bit_length(), 32))
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.Var):
            return self._resolve(expr.name, expr.span).ty
        if isinstance(expr, ast.TupleExpr):
            return TupleType(tuple(self._check_expr(item) for item in expr.items))
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr, expected)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr, expected)
        if isinstance(expr, ast.Index):
            return self._infer_index(expr)
        if isinstance(expr, ast.InExpr):
            return self._infer_in(expr)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, expected)
        raise IndusTypeError(f"unknown expression {type(expr).__name__}", expr.span)

    def _infer_unary(self, expr: ast.Unary, expected: Optional[Type]) -> Type:
        if expr.op is ast.UnaryOp.NOT:
            operand_ty = self._check_expr(expr.operand, expected=BOOL)
            if not isinstance(operand_ty, BoolType):
                raise IndusTypeError(f"! requires bool, got {operand_ty}", expr.span)
            return BOOL
        operand_ty = self._check_expr(
            expr.operand,
            expected=expected if isinstance(expected, BitType) else None,
        )
        if not isinstance(operand_ty, BitType):
            raise IndusTypeError(
                f"{expr.op.value} requires bit<n>, got {operand_ty}", expr.span
            )
        return operand_ty

    def _infer_binary(self, expr: ast.Binary,
                      expected: Optional[Type] = None) -> Type:
        op = expr.op
        if op.is_logical:
            left = self._check_expr(expr.left, expected=BOOL)
            right = self._check_expr(expr.right, expected=BOOL)
            if not isinstance(left, BoolType) or not isinstance(right, BoolType):
                raise IndusTypeError(
                    f"{op.value} requires bool operands, got {left} and {right}",
                    expr.span,
                )
            return BOOL
        if op.is_comparison:
            left, right = self._infer_operand_pair(expr)
            if op in (ast.BinaryOp.EQ, ast.BinaryOp.NEQ):
                if not self._comparable(left, right):
                    raise IndusTypeError(
                        f"cannot compare {left} with {right}", expr.span
                    )
            else:
                if not isinstance(left, BitType) or not isinstance(right, BitType):
                    raise IndusTypeError(
                        f"{op.value} requires bit<n> operands, got {left} and "
                        f"{right}",
                        expr.span,
                    )
            return BOOL
        # Arithmetic / bitwise: both sides bit<n>.  A surrounding context
        # (e.g. the target of an assignment) narrows purely-literal
        # expressions so that ``bit<8> x = 12 & 10;`` works.
        left, right = self._infer_operand_pair(expr, expected)
        if not isinstance(left, BitType) or not isinstance(right, BitType):
            raise IndusTypeError(
                f"{op.value} requires bit<n> operands, got {left} and {right}",
                expr.span,
            )
        return BitType(max(left.width, right.width))

    def _infer_operand_pair(self, expr: ast.Binary,
                            expected: Optional[Type] = None):
        """Infer both operands, letting a literal adopt the other's width
        (or the surrounding context's, when both sides are literal)."""
        context = expected if isinstance(expected, BitType) else None
        if isinstance(expr.left, ast.IntLit) and not isinstance(expr.right, ast.IntLit):
            right = self._check_expr(expr.right, expected=context)
            left = self._check_expr(
                expr.left, expected=right if isinstance(right, BitType) else None
            )
        else:
            left = self._check_expr(expr.left, expected=context)
            right = self._check_expr(
                expr.right, expected=left if isinstance(left, BitType) else None
            )
        return left, right

    def _infer_index(self, expr: ast.Index) -> Type:
        base_ty = self._check_expr(expr.base)
        if isinstance(base_ty, ArrayType):
            index_ty = self._check_expr(expr.index, expected=BitType(32))
            if not isinstance(index_ty, BitType):
                raise IndusTypeError(
                    f"array index must be bit<n>, got {index_ty}", expr.span
                )
            return base_ty.element
        if isinstance(base_ty, DictType):
            expected_key = (base_ty.key
                            if isinstance(base_ty.key, (BitType, BoolType))
                            else None)
            key_ty = self._check_expr(expr.index, expected=expected_key)
            if not self._assignable(base_ty.key, key_ty):
                raise IndusTypeError(
                    f"dictionary key has type {key_ty}, expected {base_ty.key}",
                    expr.span,
                )
            return base_ty.value
        raise IndusTypeError(
            f"{base_ty} cannot be indexed (expected array or dict)", expr.span
        )

    def _infer_in(self, expr: ast.InExpr) -> Type:
        container_ty = self._check_expr(expr.container)
        if isinstance(container_ty, (ArrayType, SetType)):
            elem = container_ty.element
        else:
            raise IndusTypeError(
                f"'in' requires an array or set on the right, got {container_ty}",
                expr.span,
            )
        item_ty = self._check_expr(
            expr.item, expected=elem if isinstance(elem, (BitType, BoolType)) else None
        )
        if not self._assignable(elem, item_ty):
            raise IndusTypeError(
                f"'in' item has type {item_ty}, container holds {elem}", expr.span
            )
        return BOOL

    def _infer_call(self, expr: ast.Call,
                    expected: Optional[Type] = None) -> Type:
        context = expected if isinstance(expected, BitType) else None
        if expr.func == "abs":
            self._require_arity(expr, 1)
            # ``abs(a - b)`` over unsigned bitstrings: interpreted as
            # absolute difference; result has the operand's width.
            ty = self._check_expr(expr.args[0], expected=context)
            if not isinstance(ty, BitType):
                raise IndusTypeError(f"abs requires bit<n>, got {ty}", expr.span)
            return ty
        if expr.func == "length":
            self._require_arity(expr, 1)
            ty = self._check_expr(expr.args[0])
            if not isinstance(ty, (ArrayType, SetType)):
                raise IndusTypeError(
                    f"length requires an array or set, got {ty}", expr.span
                )
            return BitType(32)
        if expr.func in ("max", "min"):
            self._require_arity(expr, 2)
            left = self._check_expr(expr.args[0], expected=context)
            right = self._check_expr(
                expr.args[1], expected=left if isinstance(left, BitType) else None
            )
            if not isinstance(left, BitType) or not isinstance(right, BitType):
                raise IndusTypeError(
                    f"{expr.func} requires bit<n> operands", expr.span
                )
            return BitType(max(left.width, right.width))
        raise IndusTypeError(f"unknown function {expr.func!r}", expr.span)

    @staticmethod
    def _require_arity(expr: ast.Call, count: int) -> None:
        if len(expr.args) != count:
            raise IndusTypeError(
                f"{expr.func} takes {count} argument(s), got {len(expr.args)}",
                expr.span,
            )

    # -- type relations ------------------------------------------------------------------

    @staticmethod
    def _assignable(target: Type, value: Type) -> bool:
        if target == value:
            return True
        # Bit widths: allow narrower values into wider targets (zero-extend),
        # matching how P4 programmers use literals and slices in practice.
        if isinstance(target, BitType) and isinstance(value, BitType):
            return value.width <= target.width
        if isinstance(target, TupleType) and isinstance(value, TupleType):
            return len(target.elements) == len(value.elements) and all(
                TypeChecker._assignable(t, v)
                for t, v in zip(target.elements, value.elements)
            )
        return False

    @staticmethod
    def _comparable(a: Type, b: Type) -> bool:
        if isinstance(a, BitType) and isinstance(b, BitType):
            return True
        if isinstance(a, BoolType) and isinstance(b, BoolType):
            return True
        if isinstance(a, TupleType) and isinstance(b, TupleType):
            return len(a.elements) == len(b.elements) and all(
                TypeChecker._comparable(x, y)
                for x, y in zip(a.elements, b.elements)
            )
        return False


def check(program: ast.Program) -> CheckedProgram:
    """Type-check ``program``, returning the checked form.

    Raises :class:`~repro.indus.errors.IndusTypeError` on any violation.
    """
    return TypeChecker(program).check()
