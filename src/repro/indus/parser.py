"""Recursive-descent parser for Indus.

The grammar follows Figure 4 of the paper with the prototype extensions
(multi-variable ``for``, ``report`` payloads, ``elsif`` chains, augmented
assignment).  Nested generic types such as ``dict<bit<8>,bit<8>>`` produce
a ``>>`` token at the boundary; the parser splits it, the same fix C++
parsers use.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .errors import ParseError, SourceSpan
from .lexer import tokenize
from .tokens import Token, TokenKind
from .types import (ArrayType, BitType, BoolType, DictType, SetType,
                    TupleType, Type)

# Binary operator precedence, low to high.  ``in`` sits with comparisons.
_PRECEDENCE = [
    {TokenKind.OR: ast.BinaryOp.OR},
    {TokenKind.AND: ast.BinaryOp.AND},
    {
        TokenKind.EQ: ast.BinaryOp.EQ,
        TokenKind.NEQ: ast.BinaryOp.NEQ,
        TokenKind.LT: ast.BinaryOp.LT,
        TokenKind.LE: ast.BinaryOp.LE,
        TokenKind.GT: ast.BinaryOp.GT,
        TokenKind.GE: ast.BinaryOp.GE,
        TokenKind.IN: None,  # handled specially: builds InExpr
    },
    {TokenKind.PIPE: ast.BinaryOp.BOR},
    {TokenKind.CARET: ast.BinaryOp.BXOR},
    {TokenKind.AMP: ast.BinaryOp.BAND},
    {TokenKind.SHL: ast.BinaryOp.SHL, TokenKind.SHR: ast.BinaryOp.SHR},
    {TokenKind.PLUS: ast.BinaryOp.ADD, TokenKind.MINUS: ast.BinaryOp.SUB},
    {
        TokenKind.STAR: ast.BinaryOp.MUL,
        TokenKind.SLASH: ast.BinaryOp.DIV,
        TokenKind.PERCENT: ast.BinaryOp.MOD,
    },
]

_DECL_KINDS = {
    TokenKind.TELE: ast.VarKind.TELE,
    TokenKind.SENSOR: ast.VarKind.SENSOR,
    TokenKind.HEADER: ast.VarKind.HEADER,
    TokenKind.CONTROL: ast.VarKind.CONTROL,
    TokenKind.LOCAL: ast.VarKind.LOCAL,
}

_TYPE_STARTS = (TokenKind.BIT, TokenKind.BOOL, TokenKind.SET,
                TokenKind.DICT, TokenKind.LPAREN)

BUILTIN_FUNCTIONS = ("abs", "length", "max", "min")


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token-stream helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is kind:
            return self._advance()
        where = f" in {context}" if context else ""
        raise ParseError(
            f"expected {kind.value!r} but found {token.kind.value!r}{where}",
            token.span,
        )

    def _expect_gt(self, context: str) -> None:
        """Consume a ``>``, splitting a ``>>`` token if necessary."""
        token = self._peek()
        if token.kind is TokenKind.GT:
            self._advance()
            return
        if token.kind is TokenKind.SHR:
            # Split ">>" into two ">" tokens: consume one half, leave the other.
            half = Token(TokenKind.GT, ">", token.span)
            self.tokens[self.pos] = half
            return
        raise ParseError(
            f"expected '>' but found {token.kind.value!r} in {context}", token.span
        )

    # -- types ------------------------------------------------------------------

    def parse_type(self) -> Type:
        base = self._parse_base_type()
        # Array suffixes: t[n], t[n][m] (outermost last).
        while self._at(TokenKind.LBRACKET):
            self._advance()
            size = self._expect(TokenKind.INT, "array type").value
            self._expect(TokenKind.RBRACKET, "array type")
            base = ArrayType(base, int(size))
        return base

    def _parse_base_type(self) -> Type:
        token = self._peek()
        if token.kind is TokenKind.BIT:
            self._advance()
            self._expect(TokenKind.LT, "bit type")
            width = self._expect(TokenKind.INT, "bit type").value
            self._expect_gt("bit type")
            try:
                return BitType(int(width))
            except ValueError as exc:
                raise ParseError(str(exc), token.span) from exc
        if token.kind is TokenKind.BOOL:
            self._advance()
            return BoolType()
        if token.kind is TokenKind.SET:
            self._advance()
            self._expect(TokenKind.LT, "set type")
            element = self.parse_type()
            capacity = 64
            if self._match(TokenKind.COMMA):
                capacity = int(self._expect(TokenKind.INT, "set capacity").value)
            self._expect_gt("set type")
            return SetType(element, capacity)
        if token.kind is TokenKind.DICT:
            self._advance()
            self._expect(TokenKind.LT, "dict type")
            key = self.parse_type()
            self._expect(TokenKind.COMMA, "dict type")
            value = self.parse_type()
            self._expect_gt("dict type")
            return DictType(key, value)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            elements = [self.parse_type()]
            while self._match(TokenKind.COMMA):
                elements.append(self.parse_type())
            self._expect(TokenKind.RPAREN, "tuple type")
            if len(elements) == 1:
                return elements[0]
            return TupleType(tuple(elements))
        raise ParseError(
            f"expected a type but found {token.kind.value!r}", token.span
        )

    # -- declarations ------------------------------------------------------------

    def parse_decl(self) -> ast.Decl:
        kind_token = self._advance()
        kind = _DECL_KINDS[kind_token.kind]
        if self._peek().kind in _TYPE_STARTS:
            ty: Type = self.parse_type()
        else:
            # Untyped control scalars (Figure 2: ``control thresh;``)
            # default to bit<32>.
            if kind is not ast.VarKind.CONTROL:
                raise ParseError(
                    f"{kind.value} declarations require an explicit type",
                    self._peek().span,
                )
            ty = BitType(32)
        name = self._expect(TokenKind.IDENT, "declaration").text
        init: Optional[ast.Expr] = None
        annotation: Optional[str] = None
        if self._match(TokenKind.ASSIGN):
            init = self.parse_expr()
        if self._match(TokenKind.AT):
            annotation = self._parse_annotation()
        self._expect(TokenKind.SEMI, "declaration")
        return ast.Decl(kind, ty, name, init, annotation, kind_token.span)

    def _parse_annotation(self) -> str:
        """Parse a dotted forwarding-program path: ``hdr.ipv4.src_addr``."""
        parts = [self._expect(TokenKind.IDENT, "header annotation").text]
        while self._match(TokenKind.DOT):
            parts.append(self._expect(TokenKind.IDENT, "header annotation").text)
        return ".".join(parts)

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        table = _PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind in table:
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            span = left.span.merge(right.span)
            if op_token.kind is TokenKind.IN:
                left = ast.InExpr(item=left, container=right, span=span)
            else:
                left = ast.Binary(
                    op=table[op_token.kind], left=left, right=right, span=span
                )
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=ast.UnaryOp.NOT, operand=operand,
                             span=token.span.merge(operand.span))
        if token.kind is TokenKind.TILDE:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=ast.UnaryOp.BNOT, operand=operand,
                             span=token.span.merge(operand.span))
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=ast.UnaryOp.NEG, operand=operand,
                             span=token.span.merge(operand.span))
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at(TokenKind.LBRACKET):
            self._advance()
            index = self.parse_expr()
            end = self._expect(TokenKind.RBRACKET, "index expression")
            expr = ast.Index(base=expr, index=index,
                             span=expr.span.merge(end.span))
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(value=int(token.value or 0), span=token.span)
        if token.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(value=True, span=token.span)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(value=False, span=token.span)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN) and token.text in BUILTIN_FUNCTIONS:
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    while self._match(TokenKind.COMMA):
                        args.append(self.parse_expr())
                end = self._expect(TokenKind.RPAREN, "call")
                return ast.Call(func=token.text, args=args,
                                span=token.span.merge(end.span))
            return ast.Var(name=token.text, span=token.span)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            items = [self.parse_expr()]
            while self._match(TokenKind.COMMA):
                items.append(self.parse_expr())
            end = self._expect(TokenKind.RPAREN, "parenthesized expression")
            if len(items) == 1:
                return items[0]
            return ast.TupleExpr(items=items, span=token.span.merge(end.span))
        raise ParseError(
            f"expected an expression but found {token.kind.value!r}", token.span
        )

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self._expect(TokenKind.LBRACE, "block")
        stmts: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", self._peek().span)
            stmts.append(self.parse_stmt())
        self._expect(TokenKind.RBRACE, "block")
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.PASS:
            self._advance()
            self._expect(TokenKind.SEMI, "pass statement")
            return ast.Pass(span=token.span)
        if token.kind is TokenKind.REJECT:
            self._advance()
            self._expect(TokenKind.SEMI, "reject statement")
            return ast.Reject(span=token.span)
        if token.kind is TokenKind.REPORT:
            self._advance()
            payload: Optional[ast.Expr] = None
            if self._match(TokenKind.LPAREN):
                payload = self.parse_expr()
                self._expect(TokenKind.RPAREN, "report payload")
            self._expect(TokenKind.SEMI, "report statement")
            return ast.Report(payload=payload, span=token.span)
        if token.kind is TokenKind.IF:
            return self._parse_if()
        if token.kind is TokenKind.FOR:
            return self._parse_for()
        return self._parse_simple_stmt()

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.IF)
        arms = []
        self._expect(TokenKind.LPAREN, "if condition")
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN, "if condition")
        arms.append((cond, self.parse_block()))
        orelse: List[ast.Stmt] = []
        while True:
            if self._at(TokenKind.ELSIF):
                self._advance()
                self._expect(TokenKind.LPAREN, "elsif condition")
                cond = self.parse_expr()
                self._expect(TokenKind.RPAREN, "elsif condition")
                arms.append((cond, self.parse_block()))
            elif self._at(TokenKind.ELSE):
                self._advance()
                if self._at(TokenKind.IF):
                    # ``else if`` sugar: treat as elsif.
                    self._advance()
                    self._expect(TokenKind.LPAREN, "else-if condition")
                    cond = self.parse_expr()
                    self._expect(TokenKind.RPAREN, "else-if condition")
                    arms.append((cond, self.parse_block()))
                    continue
                orelse = self.parse_block()
                break
            else:
                break
        return ast.If(arms=arms, orelse=orelse, span=start.span)

    def _parse_for(self) -> ast.For:
        start = self._expect(TokenKind.FOR)
        self._expect(TokenKind.LPAREN, "for loop")
        names = [self._expect(TokenKind.IDENT, "for loop variable").text]
        while self._match(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT, "for loop variable").text)
        self._expect(TokenKind.IN, "for loop")
        iterables = [self.parse_expr()]
        while self._match(TokenKind.COMMA):
            iterables.append(self.parse_expr())
        self._expect(TokenKind.RPAREN, "for loop")
        body = self.parse_block()
        if len(names) != len(iterables):
            raise ParseError(
                f"for loop binds {len(names)} variables but iterates over "
                f"{len(iterables)} collections",
                start.span,
            )
        return ast.For(names=names, iterables=iterables, body=body, span=start.span)

    def _parse_simple_stmt(self) -> ast.Stmt:
        """Assignment, augmented assignment, or a ``push`` method call."""
        target = self._parse_postfix()
        token = self._peek()
        if token.kind is TokenKind.DOT:
            self._advance()
            method = self._expect(TokenKind.IDENT, "method call").text
            if method != "push":
                raise ParseError(f"unknown method {method!r}", token.span)
            self._expect(TokenKind.LPAREN, "push")
            value = self.parse_expr()
            self._expect(TokenKind.RPAREN, "push")
            self._expect(TokenKind.SEMI, "push statement")
            return ast.Push(target=target, value=value, span=target.span)
        if token.kind is TokenKind.ASSIGN:
            self._advance()
            value = self.parse_expr()
            self._expect(TokenKind.SEMI, "assignment")
            return ast.Assign(target=target, value=value, span=target.span)
        if token.kind in (TokenKind.PLUS_ASSIGN, TokenKind.MINUS_ASSIGN):
            self._advance()
            op = (ast.BinaryOp.ADD if token.kind is TokenKind.PLUS_ASSIGN
                  else ast.BinaryOp.SUB)
            value = self.parse_expr()
            self._expect(TokenKind.SEMI, "augmented assignment")
            return ast.AugAssign(target=target, op=op, value=value,
                                 span=target.span)
        raise ParseError(
            f"expected a statement but found {token.kind.value!r}", token.span
        )

    # -- programs -----------------------------------------------------------------------

    def parse_program(self, source: str = "") -> ast.Program:
        decls: List[ast.Decl] = []
        while self._peek().kind in _DECL_KINDS:
            decls.append(self.parse_decl())
        init_block = self.parse_block()
        tele_block = self.parse_block()
        check_block = self.parse_block()
        if not self._at(TokenKind.EOF):
            raise ParseError(
                f"unexpected {self._peek().kind.value!r} after checker block",
                self._peek().span,
            )
        return ast.Program(
            decls=decls,
            init_block=init_block,
            tele_block=tele_block,
            check_block=check_block,
            source=source,
        )


def parse(source: str) -> ast.Program:
    """Parse Indus source text into a :class:`~repro.indus.ast.Program`."""
    return Parser(tokenize(source)).parse_program(source)


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and the LTLf translator)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    if not parser._at(TokenKind.EOF):
        raise ParseError(
            f"unexpected {parser._peek().kind.value!r} after expression",
            parser._peek().span,
        )
    return expr
