"""Abstract syntax tree for the Indus language (Figure 4, plus the
prototype extensions the paper mentions: multi-variable ``for`` loops,
``report`` with a payload, augmented assignment, and ``elsif`` chains).

Nodes are plain dataclasses.  The type checker decorates expression nodes
with an inferred ``ty`` attribute (left as ``None`` until checking runs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .errors import SourceSpan, UNKNOWN_SPAN
from .types import Type


class VarKind(enum.Enum):
    """Variable modifiers, which determine storage and mutability.

    * ``TELE``    — travels on the packet; read-write.
    * ``SENSOR``  — switch-local register state; read-write, persists
      across packets.
    * ``HEADER``  — read-only view of packet headers / standard metadata.
    * ``CONTROL`` — read-only view of control-plane state.
    * ``LOCAL``   — per-block scratch variable (prototype extension; also
      produced by the LTLf translation).
    """

    TELE = "tele"
    SENSOR = "sensor"
    HEADER = "header"
    CONTROL = "control"
    LOCAL = "local"

    @property
    def read_only(self) -> bool:
        return self in (VarKind.HEADER, VarKind.CONTROL)


class UnaryOp(enum.Enum):
    NEG = "-"
    BNOT = "~"
    NOT = "!"


class BinaryOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    BAND = "&"
    BOR = "|"
    BXOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"

    @property
    def is_comparison(self) -> bool:
        return self in (BinaryOp.EQ, BinaryOp.NEQ, BinaryOp.LT,
                        BinaryOp.LE, BinaryOp.GT, BinaryOp.GE)

    @property
    def is_logical(self) -> bool:
        return self in (BinaryOp.AND, BinaryOp.OR)

    @property
    def is_arithmetic(self) -> bool:
        return self in (BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL,
                        BinaryOp.DIV, BinaryOp.MOD)

    @property
    def is_bitwise(self) -> bool:
        return self in (BinaryOp.BAND, BinaryOp.BOR, BinaryOp.BXOR,
                        BinaryOp.SHL, BinaryOp.SHR)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr:
    """Base class for expressions; ``ty`` is filled in by the type checker."""

    span: SourceSpan = field(default=UNKNOWN_SPAN, kw_only=True)
    ty: Optional[Type] = field(default=None, kw_only=True, compare=False)


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class TupleExpr(Expr):
    items: List[Expr] = field(default_factory=list)


@dataclass
class Unary(Expr):
    op: UnaryOp = UnaryOp.NOT
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: BinaryOp = BinaryOp.ADD
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Index(Expr):
    """``base[index]`` — array indexing or dictionary lookup."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class InExpr(Expr):
    """``item in container`` — membership test over arrays and sets."""

    item: Expr = None  # type: ignore[assignment]
    container: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """Builtin function call: ``abs(e)``, ``length(xs)``, ``max``/``min``."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    span: SourceSpan = field(default=UNKNOWN_SPAN, kw_only=True)


@dataclass
class Pass(Stmt):
    pass


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a variable or an array slot."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class AugAssign(Stmt):
    """``target op= value`` (prototype extension; used in Figure 2)."""

    target: Expr = None  # type: ignore[assignment]
    op: BinaryOp = BinaryOp.ADD
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Push(Stmt):
    """``xs.push(e)`` — append to a tele/sensor array."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    """``if`` / ``elsif`` / ``else``.

    ``arms`` is the ordered list of (condition, body); ``orelse`` is the
    final ``else`` body (possibly empty).
    """

    arms: List[Tuple[Expr, List[Stmt]]] = field(default_factory=list)
    orelse: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for (x in xs) s`` and the multi-variable extension
    ``for (a, b in xs, ys) s`` used by Figure 2."""

    names: List[str] = field(default_factory=list)
    iterables: List[Expr] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Reject(Stmt):
    pass


@dataclass
class Report(Stmt):
    """``report;`` or ``report(payload);``."""

    payload: Optional[Expr] = None


# --------------------------------------------------------------------------
# Declarations and programs
# --------------------------------------------------------------------------

@dataclass
class Decl:
    """A top-level variable declaration.

    ``annotation`` is the forwarding-program binding for header variables
    (the ``@ hdr.ipv4.src_addr`` form described in Section 4.1); ``init``
    is the optional initializer expression.
    """

    kind: VarKind
    ty: Type
    name: str
    init: Optional[Expr] = None
    annotation: Optional[str] = None
    span: SourceSpan = UNKNOWN_SPAN


@dataclass
class Program:
    """An Indus program: declarations plus init / telemetry / checker blocks."""

    decls: List[Decl] = field(default_factory=list)
    init_block: List[Stmt] = field(default_factory=list)
    tele_block: List[Stmt] = field(default_factory=list)
    check_block: List[Stmt] = field(default_factory=list)
    source: str = ""

    def decl(self, name: str) -> Optional[Decl]:
        """Look up a declaration by name, or ``None``."""
        for d in self.decls:
            if d.name == name:
                return d
        return None

    def decls_of_kind(self, kind: VarKind) -> List[Decl]:
        return [d for d in self.decls if d.kind is kind]

    @property
    def blocks(self) -> List[Tuple[str, List[Stmt]]]:
        return [
            ("init", self.init_block),
            ("telemetry", self.tele_block),
            ("checker", self.check_block),
        ]


# Builtin read-only names available in every Indus program without
# declaration.  ``last_hop`` appears in Figure 3; the rest round out the
# obvious per-hop context a monitor needs.
BUILTIN_HEADERS = ("last_hop", "first_hop", "packet_length", "hop_count", "switch_id")
