"""Pretty-printer for Indus ASTs.

Renders a parsed program back to canonical Indus source.  The printer
round-trips: ``parse(format_program(parse(src)))`` is structurally equal
to ``parse(src)`` (see :func:`ast_equal`), which the test suite checks
for every bundled property and for fuzz-generated programs.
"""

from __future__ import annotations

from typing import List

from . import ast
from .types import Type

# Operator precedence levels used to parenthesize minimally.
_LEVELS = {
    ast.BinaryOp.OR: 1,
    ast.BinaryOp.AND: 2,
    ast.BinaryOp.EQ: 3, ast.BinaryOp.NEQ: 3, ast.BinaryOp.LT: 3,
    ast.BinaryOp.LE: 3, ast.BinaryOp.GT: 3, ast.BinaryOp.GE: 3,
    ast.BinaryOp.BOR: 4,
    ast.BinaryOp.BXOR: 5,
    ast.BinaryOp.BAND: 6,
    ast.BinaryOp.SHL: 7, ast.BinaryOp.SHR: 7,
    ast.BinaryOp.ADD: 8, ast.BinaryOp.SUB: 8,
    ast.BinaryOp.MUL: 9, ast.BinaryOp.DIV: 9, ast.BinaryOp.MOD: 9,
}
_IN_LEVEL = 3
_UNARY_LEVEL = 10


def format_type(ty: Type) -> str:
    return str(ty)


def format_expr(expr: ast.Expr, parent_level: int = 0) -> str:
    text, level = _expr(expr)
    if level < parent_level:
        return f"({text})"
    return text


def _expr(expr: ast.Expr):
    if isinstance(expr, ast.IntLit):
        return str(expr.value), _UNARY_LEVEL + 1
    if isinstance(expr, ast.BoolLit):
        return ("true" if expr.value else "false"), _UNARY_LEVEL + 1
    if isinstance(expr, ast.Var):
        return expr.name, _UNARY_LEVEL + 1
    if isinstance(expr, ast.TupleExpr):
        inner = ", ".join(format_expr(item) for item in expr.items)
        return f"({inner})", _UNARY_LEVEL + 1
    if isinstance(expr, ast.Unary):
        operand = format_expr(expr.operand, _UNARY_LEVEL)
        return f"{expr.op.value}{operand}", _UNARY_LEVEL
    if isinstance(expr, ast.Binary):
        level = _LEVELS[expr.op]
        left = format_expr(expr.left, level)
        # Right operand needs a strictly higher level to preserve
        # left-associativity on reparse.
        right = format_expr(expr.right, level + 1)
        return f"{left} {expr.op.value} {right}", level
    if isinstance(expr, ast.Index):
        base = format_expr(expr.base, _UNARY_LEVEL + 1)
        return f"{base}[{format_expr(expr.index)}]", _UNARY_LEVEL + 1
    if isinstance(expr, ast.InExpr):
        item = format_expr(expr.item, _IN_LEVEL + 1)
        container = format_expr(expr.container, _IN_LEVEL + 1)
        return f"{item} in {container}", _IN_LEVEL
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})", _UNARY_LEVEL + 1
    raise TypeError(f"cannot format {type(expr).__name__}")


def _format_stmt(stmt: ast.Stmt, depth: int, out: List[str]) -> None:
    pad = "  " * depth
    if isinstance(stmt, ast.Pass):
        out.append(f"{pad}pass;")
    elif isinstance(stmt, ast.Reject):
        out.append(f"{pad}reject;")
    elif isinstance(stmt, ast.Report):
        if stmt.payload is None:
            out.append(f"{pad}report;")
        else:
            out.append(f"{pad}report({format_expr(stmt.payload)});")
    elif isinstance(stmt, ast.Assign):
        out.append(f"{pad}{format_expr(stmt.target)} = "
                   f"{format_expr(stmt.value)};")
    elif isinstance(stmt, ast.AugAssign):
        op = "+=" if stmt.op is ast.BinaryOp.ADD else "-="
        out.append(f"{pad}{format_expr(stmt.target)} {op} "
                   f"{format_expr(stmt.value)};")
    elif isinstance(stmt, ast.Push):
        out.append(f"{pad}{format_expr(stmt.target)}.push("
                   f"{format_expr(stmt.value)});")
    elif isinstance(stmt, ast.If):
        keyword = "if"
        for cond, body in stmt.arms:
            out.append(f"{pad}{keyword} ({format_expr(cond)}) {{")
            for inner in body:
                _format_stmt(inner, depth + 1, out)
            out.append(f"{pad}}}")
            keyword = "elsif"
        if stmt.orelse:
            out.append(f"{pad}else {{")
            for inner in stmt.orelse:
                _format_stmt(inner, depth + 1, out)
            out.append(f"{pad}}}")
    elif isinstance(stmt, ast.For):
        names = ", ".join(stmt.names)
        iters = ", ".join(format_expr(it) for it in stmt.iterables)
        out.append(f"{pad}for ({names} in {iters}) {{")
        for inner in stmt.body:
            _format_stmt(inner, depth + 1, out)
        out.append(f"{pad}}}")
    else:
        raise TypeError(f"cannot format {type(stmt).__name__}")


def format_decl(decl: ast.Decl) -> str:
    text = f"{decl.kind.value} {format_type(decl.ty)} {decl.name}"
    if decl.init is not None:
        text += f" = {format_expr(decl.init)}"
    if decl.annotation is not None:
        text += f" @ {decl.annotation}"
    return text + ";"


def format_program(program: ast.Program) -> str:
    """Render a program to canonical Indus source text."""
    lines: List[str] = [format_decl(d) for d in program.decls]
    if lines:
        lines.append("")
    for _, stmts in program.blocks:
        lines.append("{")
        for stmt in stmts:
            _format_stmt(stmt, 1, lines)
        lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Structural equality (ignoring spans and inferred types)
# ---------------------------------------------------------------------------

def ast_equal(a, b) -> bool:
    """Structural AST equality, ignoring source spans and inferred types."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Program):
        return (len(a.decls) == len(b.decls)
                and all(ast_equal(x, y) for x, y in zip(a.decls, b.decls))
                and _blocks_equal(a, b))
    if isinstance(a, ast.Decl):
        return (a.kind is b.kind and a.ty == b.ty and a.name == b.name
                and a.annotation == b.annotation
                and _opt_equal(a.init, b.init))
    if isinstance(a, list):
        return (len(a) == len(b)
                and all(ast_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, ast.If):
        if len(a.arms) != len(b.arms):
            return False
        for (ca, ba), (cb, bb) in zip(a.arms, b.arms):
            if not ast_equal(ca, cb) or not ast_equal(ba, bb):
                return False
        return ast_equal(a.orelse, b.orelse)
    if isinstance(a, ast.For):
        return (a.names == b.names
                and ast_equal(a.iterables, b.iterables)
                and ast_equal(a.body, b.body))
    if isinstance(a, (ast.Pass, ast.Reject)):
        return True
    if isinstance(a, ast.Report):
        return _opt_equal(a.payload, b.payload)
    if isinstance(a, ast.Assign):
        return ast_equal(a.target, b.target) and ast_equal(a.value, b.value)
    if isinstance(a, ast.AugAssign):
        return (a.op is b.op and ast_equal(a.target, b.target)
                and ast_equal(a.value, b.value))
    if isinstance(a, ast.Push):
        return ast_equal(a.target, b.target) and ast_equal(a.value, b.value)
    if isinstance(a, ast.Var):
        return a.name == b.name
    if isinstance(a, ast.IntLit):
        return a.value == b.value
    if isinstance(a, ast.BoolLit):
        return a.value == b.value
    if isinstance(a, ast.TupleExpr):
        return ast_equal(a.items, b.items)
    if isinstance(a, ast.Unary):
        return a.op is b.op and ast_equal(a.operand, b.operand)
    if isinstance(a, ast.Binary):
        return (a.op is b.op and ast_equal(a.left, b.left)
                and ast_equal(a.right, b.right))
    if isinstance(a, ast.Index):
        return ast_equal(a.base, b.base) and ast_equal(a.index, b.index)
    if isinstance(a, ast.InExpr):
        return (ast_equal(a.item, b.item)
                and ast_equal(a.container, b.container))
    if isinstance(a, ast.Call):
        return a.func == b.func and ast_equal(a.args, b.args)
    raise TypeError(f"cannot compare {type(a).__name__}")


def _opt_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return ast_equal(a, b)


def _blocks_equal(a: ast.Program, b: ast.Program) -> bool:
    return (ast_equal(a.init_block, b.init_block)
            and ast_equal(a.tele_block, b.tele_block)
            and ast_equal(a.check_block, b.check_block))
