"""Token definitions for the Indus lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from .errors import SourceSpan


class TokenKind(enum.Enum):
    # Literals and identifiers
    IDENT = "identifier"
    INT = "integer literal"
    TRUE = "true"
    FALSE = "false"

    # Keywords — declarations and modifiers
    TELE = "tele"
    SENSOR = "sensor"
    CONTROL = "control"
    HEADER = "header"
    LOCAL = "local"

    # Keywords — types
    BIT = "bit"
    BOOL = "bool"
    SET = "set"
    DICT = "dict"

    # Keywords — statements
    IF = "if"
    ELSIF = "elsif"
    ELSE = "else"
    FOR = "for"
    IN = "in"
    PASS = "pass"
    REJECT = "reject"
    REPORT = "report"

    # Punctuation
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    AT = "@"

    # Operators
    ASSIGN = "="
    PLUS = "+"
    PLUS_ASSIGN = "+="
    MINUS = "-"
    MINUS_ASSIGN = "-="
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    TILDE = "~"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    NOT = "!"
    AND = "&&"
    OR = "||"

    EOF = "end of input"


KEYWORDS = {
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "tele": TokenKind.TELE,
    "sensor": TokenKind.SENSOR,
    "control": TokenKind.CONTROL,
    "header": TokenKind.HEADER,
    "local": TokenKind.LOCAL,
    "bit": TokenKind.BIT,
    "bool": TokenKind.BOOL,
    "set": TokenKind.SET,
    "dict": TokenKind.DICT,
    "if": TokenKind.IF,
    "elsif": TokenKind.ELSIF,
    "else": TokenKind.ELSE,
    "for": TokenKind.FOR,
    "in": TokenKind.IN,
    "pass": TokenKind.PASS,
    "reject": TokenKind.REJECT,
    "report": TokenKind.REPORT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source span."""

    kind: TokenKind
    text: str
    span: SourceSpan
    value: Union[int, None] = None  # populated for INT tokens

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
