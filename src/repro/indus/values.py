"""Runtime value representations shared by the Indus interpreter and the
P4 behavioral model.

Scalar values are plain Python ``int``/``bool``; aggregates get small
wrapper classes that enforce the static-allocation discipline of the
language (fixed capacities, push cursors mirroring P4 header stacks).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from .types import (ArrayType, BitType, BoolType, DictType, SetType,
                    TupleType, Type)


def mask(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (unsigned wraparound)."""
    return value & ((1 << width) - 1)


def zero_value(ty: Type) -> Any:
    """The default value of a type: 0 / false / empty aggregates."""
    if isinstance(ty, BitType):
        return 0
    if isinstance(ty, BoolType):
        return False
    if isinstance(ty, ArrayType):
        return ArrayValue(ty)
    if isinstance(ty, SetType):
        return SetValue(ty)
    if isinstance(ty, DictType):
        return DictValue(ty)
    if isinstance(ty, TupleType):
        return tuple(zero_value(e) for e in ty.elements)
    raise ValueError(f"no zero value for {ty}")


def coerce(ty: Type, value: Any) -> Any:
    """Fit a host-provided value into ``ty`` (masking bit values)."""
    if isinstance(ty, BitType):
        return mask(int(value), ty.width)
    if isinstance(ty, BoolType):
        return bool(value)
    if isinstance(ty, TupleType):
        items = tuple(value)
        if len(items) != len(ty.elements):
            raise ValueError(f"tuple arity mismatch for {ty}: {value!r}")
        return tuple(coerce(e, v) for e, v in zip(ty.elements, items))
    return value


class ArrayValue:
    """A fixed-capacity array with a push cursor.

    Mirrors a P4 header stack: slots become valid as values are pushed;
    ``for`` iterates over valid slots only; pushing past capacity drops
    the value (the compiler emits the same saturating behaviour).
    """

    def __init__(self, ty: ArrayType, items: Iterable[Any] = ()):
        self.ty = ty
        self.slots: List[Any] = [zero_value(ty.element)] * ty.capacity
        self.count = 0
        for item in items:
            self.push(item)

    def push(self, value: Any) -> bool:
        """Append ``value``; returns False (and drops it) when full."""
        if self.count >= self.ty.capacity:
            return False
        self.slots[self.count] = coerce(self.ty.element, value)
        self.count += 1
        return True

    def get(self, index: int) -> Any:
        """Read slot ``index``; out-of-range reads yield the zero value,
        matching the compiled code's behaviour on invalid stack entries."""
        if 0 <= index < self.ty.capacity:
            return self.slots[index]
        return zero_value(self.ty.element)

    def set(self, index: int, value: Any) -> None:
        if not 0 <= index < self.ty.capacity:
            return  # out-of-range writes are dropped, as on hardware
        self.slots[index] = coerce(self.ty.element, value)
        self.count = max(self.count, index + 1)

    def valid_items(self) -> List[Any]:
        return self.slots[: self.count]

    def __contains__(self, value: Any) -> bool:
        return coerce(self.ty.element, value) in self.valid_items()

    def __len__(self) -> int:
        return self.count

    def copy(self) -> "ArrayValue":
        clone = ArrayValue(self.ty)
        clone.slots = list(self.slots)
        clone.count = self.count
        return clone

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ArrayValue) and other.ty == self.ty
                and other.valid_items() == self.valid_items())

    def __repr__(self) -> str:
        return f"ArrayValue({self.valid_items()!r})"


class SetValue:
    """A capacity-bounded set."""

    def __init__(self, ty: SetType, items: Iterable[Any] = ()):
        self.ty = ty
        self.items: set = set()
        for item in items:
            self.add(item)

    def add(self, value: Any) -> bool:
        value = coerce(self.ty.element, value)
        if value in self.items:
            return True
        if len(self.items) >= self.ty.capacity:
            return False
        self.items.add(value)
        return True

    def __contains__(self, value: Any) -> bool:
        return coerce(self.ty.element, value) in self.items

    def __len__(self) -> int:
        return len(self.items)

    def valid_items(self) -> List[Any]:
        return sorted(self.items)

    def copy(self) -> "SetValue":
        clone = SetValue(self.ty)
        clone.items = set(self.items)
        return clone

    def __repr__(self) -> str:
        return f"SetValue({sorted(self.items)!r})"


class DictValue:
    """A dictionary with miss-as-zero lookup semantics.

    Control-plane dictionaries compile to match-action tables whose miss
    behaviour is the default action; looking up an absent key therefore
    yields the zero value of the value type (e.g. ``false`` for the
    stateful firewall's ``allowed`` dict).
    """

    def __init__(self, ty: DictType, entries: Dict[Any, Any] = None):
        self.ty = ty
        self.entries: Dict[Any, Any] = {}
        for key, value in (entries or {}).items():
            self.put(key, value)

    def put(self, key: Any, value: Any) -> None:
        self.entries[coerce(self.ty.key, key)] = coerce(self.ty.value, value)

    def remove(self, key: Any) -> None:
        self.entries.pop(coerce(self.ty.key, key), None)

    def get(self, key: Any) -> Any:
        return self.entries.get(coerce(self.ty.key, key),
                                zero_value(self.ty.value))

    def __contains__(self, key: Any) -> bool:
        return coerce(self.ty.key, key) in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def copy(self) -> "DictValue":
        clone = DictValue(self.ty)
        clone.entries = dict(self.entries)
        return clone

    def __repr__(self) -> str:
        return f"DictValue({self.entries!r})"


def pack_value(ty: Type, value: Any) -> Tuple[int, int]:
    """Serialize a packable value to (bits, width) for the wire.

    Used by the telemetry header codec: values are packed big-endian,
    arrays as [count-validity bits][slots].
    """
    if isinstance(ty, BitType):
        return mask(int(value), ty.width), ty.width
    if isinstance(ty, BoolType):
        return (1 if value else 0), 1
    if isinstance(ty, TupleType):
        acc, total = 0, 0
        for ety, item in zip(ty.elements, tuple(value)):
            bits_, width = pack_value(ety, item)
            acc = (acc << width) | bits_
            total += width
        return acc, total
    if isinstance(ty, ArrayType):
        arr = value if isinstance(value, ArrayValue) else ArrayValue(ty, value)
        acc, total = 0, 0
        for i in range(ty.capacity):
            valid = 1 if i < arr.count else 0
            acc = (acc << 1) | valid
            total += 1
            bits_, width = pack_value(ty.element, arr.slots[i])
            acc = (acc << width) | bits_
            total += width
        return acc, total
    if isinstance(ty, SetType):
        items = value.valid_items() if isinstance(value, SetValue) else sorted(value)
        acc, total = 0, 0
        for i in range(ty.capacity):
            valid = 1 if i < len(items) else 0
            item = items[i] if i < len(items) else zero_value(ty.element)
            acc = (acc << 1) | valid
            total += 1
            bits_, width = pack_value(ty.element, item)
            acc = (acc << width) | bits_
            total += width
        return acc, total
    raise ValueError(f"{ty} is not packable")


def unpack_value(ty: Type, bits_: int, width: int) -> Any:
    """Inverse of :func:`pack_value`."""
    if isinstance(ty, BitType):
        assert width == ty.width
        return bits_
    if isinstance(ty, BoolType):
        return bool(bits_)
    if isinstance(ty, TupleType):
        items = []
        remaining = width
        for ety in ty.elements:
            w = ety.width_bits()
            remaining -= w
            items.append(unpack_value(ety, (bits_ >> remaining) & ((1 << w) - 1), w))
        return tuple(items)
    if isinstance(ty, ArrayType):
        arr = ArrayValue(ty)
        remaining = width
        elem_w = ty.element.width_bits()
        for i in range(ty.capacity):
            remaining -= 1
            valid = (bits_ >> remaining) & 1
            remaining -= elem_w
            raw = (bits_ >> remaining) & ((1 << elem_w) - 1)
            if valid:
                arr.push(unpack_value(ty.element, raw, elem_w))
        return arr
    if isinstance(ty, SetType):
        out = SetValue(ty)
        remaining = width
        elem_w = ty.element.width_bits()
        for i in range(ty.capacity):
            remaining -= 1
            valid = (bits_ >> remaining) & 1
            remaining -= elem_w
            raw = (bits_ >> remaining) & ((1 << elem_w) - 1)
            if valid:
                out.add(unpack_value(ty.element, raw, elem_w))
        return out
    raise ValueError(f"{ty} is not packable")
