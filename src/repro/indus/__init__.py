"""The Indus domain-specific language: lexer, parser, type checker, and
reference interpreter (monitor semantics).

Typical use::

    from repro.indus import parse, check, Monitor

    program = parse(source_text)
    checked = check(program)
    monitor = Monitor(checked)
"""

from .ast import (BinaryOp, Decl, Program, UnaryOp, VarKind)
from .errors import (CompileError, EvalError, IndusError, IndusTypeError,
                     LexError, ParseError, SourceSpan)
from .interp import (BLOCK_CHECKER, BLOCK_INIT, BLOCK_TELEMETRY, ControlStore,
                     HopContext, Monitor, MonitorState, Report, SensorStore)
from .lexer import tokenize
from .parser import parse, parse_expression
from .printer import ast_equal, format_program
from .typechecker import BUILTIN_TYPES, CheckedProgram, Symbol, check
from .types import (ArrayType, BitType, BoolType, DictType, SetType,
                    TupleType, Type, bits, BOOL)
from .values import ArrayValue, DictValue, SetValue, mask, zero_value

__all__ = [
    "ArrayType", "ArrayValue", "ast_equal", "format_program", "BLOCK_CHECKER", "BLOCK_INIT",
    "BLOCK_TELEMETRY", "BOOL", "BUILTIN_TYPES", "BinaryOp", "BitType",
    "BoolType", "CheckedProgram", "CompileError", "ControlStore", "Decl",
    "DictType", "DictValue", "EvalError", "HopContext", "IndusError",
    "IndusTypeError", "LexError", "Monitor", "MonitorState", "ParseError",
    "Program", "Report", "SensorStore", "SetType", "SetValue", "SourceSpan",
    "Symbol", "TupleType", "Type", "UnaryOp", "VarKind", "bits", "check",
    "mask", "parse", "parse_expression", "tokenize", "zero_value",
]
