"""Error types and source locations for the Indus language toolchain.

Every front-end error (lexing, parsing, type checking) carries a
:class:`SourceSpan` so that diagnostics can point at the offending text,
mirroring the error reporting a production compiler would provide.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A half-open region of source text, used for diagnostics.

    Lines and columns are 1-based, matching how editors display positions.
    """

    line: int = 0
    column: int = 0
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        if self.line == 0:
            return "<unknown>"
        return f"{self.line}:{self.column}"

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Return the smallest span covering both ``self`` and ``other``."""
        if self.line == 0:
            return other
        if other.line == 0:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column), (other.end_line, other.end_column))
        return SourceSpan(start[0], start[1], end[0], end[1])


UNKNOWN_SPAN = SourceSpan()


class IndusError(Exception):
    """Base class for all errors raised by the Indus toolchain."""

    def __init__(self, message: str, span: SourceSpan = UNKNOWN_SPAN):
        super().__init__(f"{span}: {message}" if span.line else message)
        self.message = message
        self.span = span


class LexError(IndusError):
    """Raised when the lexer encounters malformed input."""


class ParseError(IndusError):
    """Raised when the parser cannot build an AST from the token stream."""


class TypeError_(IndusError):
    """Raised by the type checker.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TypeError`; exported as ``IndusTypeError``.
    """


IndusTypeError = TypeError_


class EvalError(IndusError):
    """Raised by the reference interpreter on a runtime fault.

    A well-typed Indus program should never raise this; it guards against
    host-side misuse (e.g. binding a header variable to a wrong-width value).
    """


class CompileError(IndusError):
    """Raised by the Indus-to-P4 compiler when a construct cannot be lowered."""
