"""Reference interpreter for Indus.

The interpreter gives the *specification* semantics of a monitor: a
:class:`Monitor` is instantiated from a type-checked program, a
:class:`MonitorState` travels with each packet (its ``tele`` variables),
and each hop supplies a :class:`HopContext` with that switch's header,
control, and sensor views.

The compiled pipeline (``repro.compiler`` + ``repro.p4.bmv2``) implements
the same semantics independently; differential tests check agreement,
mirroring the paper's independence argument between forwarding and
checking code.

Verdict semantics: ``reject`` and ``report`` are *accumulators*, not
aborting exceptions — Figure 9 of the paper runs ``reject; report(...)``
in sequence, so both must take effect.  A block always runs to
completion; the final verdict is reject-if-flagged, with all reports
delivered to the control plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from . import ast
from .errors import EvalError
from .typechecker import BUILTIN_TYPES, CheckedProgram, check
from .types import ArrayType, BitType, BoolType, DictType, SetType, TupleType
from .values import (ArrayValue, DictValue, SetValue, coerce, mask,
                     zero_value)

BLOCK_INIT = "init"
BLOCK_TELEMETRY = "telemetry"
BLOCK_CHECKER = "checker"


@dataclass
class Report:
    """A report emitted toward the control plane."""

    block: str
    payload: Optional[Any] = None
    switch_id: int = 0


@dataclass
class MonitorState:
    """Per-packet monitor state: the tele variables plus verdict flags.

    This is exactly the information the compiled system carries in the
    Hydra telemetry header.
    """

    tele: Dict[str, Any] = field(default_factory=dict)
    rejected: bool = False
    reports: List[Report] = field(default_factory=list)

    def copy(self) -> "MonitorState":
        tele = {
            name: value.copy() if hasattr(value, "copy") else value
            for name, value in self.tele.items()
        }
        return MonitorState(tele=tele, rejected=self.rejected,
                            reports=list(self.reports))


class SensorStore:
    """Switch-local sensor (register) storage, persistent across packets."""

    def __init__(self):
        self._values: Dict[str, Any] = {}

    def setup(self, name: str, ty, init: Any) -> None:
        if name not in self._values:
            self._values[name] = init if init is not None else zero_value(ty)

    def get(self, name: str) -> Any:
        return self._values[name]

    def set(self, name: str, value: Any) -> None:
        self._values[name] = value

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._values)


class ControlStore:
    """Read-only (from the data plane) control variable storage.

    The control plane writes through :meth:`set_value`, :meth:`dict_put`
    and :meth:`dict_remove` — the same operations the P4Runtime-like API
    of the behavioral model exposes as table entry updates.
    """

    def __init__(self, checked: CheckedProgram):
        self._checked = checked
        self._values: Dict[str, Any] = {}
        for decl in checked.program.decls:
            if decl.kind is ast.VarKind.CONTROL:
                self._values[decl.name] = zero_value(decl.ty)

    def set_value(self, name: str, value: Any) -> None:
        decl = self._require(name)
        if isinstance(decl.ty, DictType):
            raise EvalError(
                f"control dict {name!r} must be updated entry-wise "
                "(use dict_put/dict_remove)"
            )
        if isinstance(decl.ty, SetType):
            out = SetValue(decl.ty)
            for item in value:
                out.add(item)
            self._values[name] = out
            return
        self._values[name] = coerce(decl.ty, value)

    def dict_put(self, name: str, key: Any, value: Any) -> None:
        decl = self._require(name)
        if not isinstance(decl.ty, DictType):
            raise EvalError(f"control variable {name!r} is not a dict")
        self._values[name].put(key, value)

    def dict_remove(self, name: str, key: Any) -> None:
        decl = self._require(name)
        if not isinstance(decl.ty, DictType):
            raise EvalError(f"control variable {name!r} is not a dict")
        self._values[name].remove(key)

    def set_add(self, name: str, item: Any) -> None:
        decl = self._require(name)
        if not isinstance(decl.ty, SetType):
            raise EvalError(f"control variable {name!r} is not a set")
        self._values[name].add(item)

    def get(self, name: str) -> Any:
        return self._values[name]

    def _require(self, name: str) -> ast.Decl:
        decl = self._checked.program.decl(name)
        if decl is None or decl.kind is not ast.VarKind.CONTROL:
            raise EvalError(f"unknown control variable {name!r}")
        return decl


@dataclass
class HopContext:
    """Everything a monitor can observe at one hop."""

    headers: Dict[str, Any] = field(default_factory=dict)
    controls: Optional[ControlStore] = None
    sensors: Optional[SensorStore] = None
    first_hop: bool = False
    last_hop: bool = False
    packet_length: int = 0
    hop_count: int = 0
    switch_id: int = 0

    def builtin(self, name: str) -> Any:
        if name == "last_hop":
            return self.last_hop
        if name == "first_hop":
            return self.first_hop
        if name == "packet_length":
            return mask(self.packet_length, 32)
        if name == "hop_count":
            return mask(self.hop_count, 8)
        if name == "switch_id":
            return mask(self.switch_id, 32)
        raise EvalError(f"unknown builtin {name!r}")


class _BlockScope:
    """Mutable name resolution for one block execution."""

    def __init__(self, monitor: "Monitor", state: MonitorState, ctx: HopContext):
        self.monitor = monitor
        self.state = state
        self.ctx = ctx
        self.locals: Dict[str, Any] = {}
        self.loop_vars: Dict[str, Any] = {}

    def read(self, name: str) -> Any:
        if name in self.loop_vars:
            return self.loop_vars[name]
        decl = self.monitor.decls.get(name)
        if decl is None:
            if name in BUILTIN_TYPES:
                return self.ctx.builtin(name)
            raise EvalError(f"undeclared variable {name!r}")
        kind = decl.kind
        if kind is ast.VarKind.TELE:
            return self.state.tele[name]
        if kind is ast.VarKind.LOCAL:
            if name not in self.locals:
                self.locals[name] = self.monitor.local_default(decl)
            return self.locals[name]
        if kind is ast.VarKind.SENSOR:
            if self.ctx.sensors is None:
                raise EvalError(f"no sensor store bound for {name!r}")
            self.monitor.ensure_sensor(self.ctx.sensors, decl)
            return self.ctx.sensors.get(name)
        if kind is ast.VarKind.CONTROL:
            if self.ctx.controls is None:
                raise EvalError(f"no control store bound for {name!r}")
            return self.ctx.controls.get(name)
        if kind is ast.VarKind.HEADER:
            if name not in self.ctx.headers:
                raise EvalError(
                    f"header variable {name!r} not provided by this hop"
                )
            return coerce(decl.ty, self.ctx.headers[name])
        raise EvalError(f"cannot read {name!r}")

    def write(self, name: str, value: Any) -> None:
        decl = self.monitor.decls.get(name)
        if decl is None:
            raise EvalError(f"undeclared variable {name!r}")
        value = coerce(decl.ty, value)
        kind = decl.kind
        if kind is ast.VarKind.TELE:
            self.state.tele[name] = value
        elif kind is ast.VarKind.LOCAL:
            self.locals[name] = value
        elif kind is ast.VarKind.SENSOR:
            if self.ctx.sensors is None:
                raise EvalError(f"no sensor store bound for {name!r}")
            self.monitor.ensure_sensor(self.ctx.sensors, decl)
            self.ctx.sensors.set(name, value)
        else:
            raise EvalError(f"{kind.value} variable {name!r} is read-only")


class Monitor:
    """Executable monitor semantics for a checked Indus program."""

    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.program = checked.program
        self.decls: Dict[str, ast.Decl] = {d.name: d for d in self.program.decls}
        self._init_values: Dict[str, Any] = {}
        for decl in self.program.decls:
            if decl.kind is ast.VarKind.TELE:
                self._init_values[decl.name] = self._decl_default(decl)

    @classmethod
    def from_source(cls, source: str) -> "Monitor":
        from .parser import parse

        return cls(check(parse(source)))

    # -- state construction -------------------------------------------------------

    def _decl_default(self, decl: ast.Decl) -> Any:
        if decl.init is None:
            return zero_value(decl.ty)
        value = _eval_const(decl.init)
        return coerce(decl.ty, value)

    def local_default(self, decl: ast.Decl) -> Any:
        return self._decl_default(decl)

    def ensure_sensor(self, store: SensorStore, decl: ast.Decl) -> None:
        store.setup(decl.name, decl.ty, self._decl_default(decl))

    def new_state(self) -> MonitorState:
        tele = {
            name: value.copy() if hasattr(value, "copy") else value
            for name, value in self._init_values.items()
        }
        return MonitorState(tele=tele)

    def new_controls(self) -> ControlStore:
        return ControlStore(self.checked)

    def new_sensors(self) -> SensorStore:
        store = SensorStore()
        for decl in self.program.decls:
            if decl.kind is ast.VarKind.SENSOR:
                self.ensure_sensor(store, decl)
        return store

    # -- execution ----------------------------------------------------------------

    def run_block(self, block: str, state: MonitorState, ctx: HopContext) -> None:
        stmts = {
            BLOCK_INIT: self.program.init_block,
            BLOCK_TELEMETRY: self.program.tele_block,
            BLOCK_CHECKER: self.program.check_block,
        }[block]
        scope = _BlockScope(self, state, ctx)
        for stmt in stmts:
            self._exec(stmt, scope, block)

    def run_hop(self, state: MonitorState, ctx: HopContext) -> None:
        """Run all blocks appropriate for this hop, in order."""
        if ctx.first_hop:
            self.run_block(BLOCK_INIT, state, ctx)
        self.run_block(BLOCK_TELEMETRY, state, ctx)
        if ctx.last_hop:
            self.run_block(BLOCK_CHECKER, state, ctx)

    def run_path(self, contexts: List[HopContext]) -> MonitorState:
        """Convenience: run a packet through a sequence of hop contexts."""
        state = self.new_state()
        for ctx in contexts:
            self.run_hop(state, ctx)
        return state

    # -- statements ------------------------------------------------------------------

    def _exec(self, stmt: ast.Stmt, scope: _BlockScope, block: str) -> None:
        if isinstance(stmt, ast.Pass):
            return
        if isinstance(stmt, ast.Reject):
            scope.state.rejected = True
            return
        if isinstance(stmt, ast.Report):
            payload = (self._eval(stmt.payload, scope)
                       if stmt.payload is not None else None)
            scope.state.reports.append(
                Report(block=block, payload=payload, switch_id=scope.ctx.switch_id)
            )
            return
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt.target, self._eval(stmt.value, scope), scope)
            return
        if isinstance(stmt, ast.AugAssign):
            current = self._eval(stmt.target, scope)
            operand = self._eval(stmt.value, scope)
            width = stmt.target.ty.width if isinstance(stmt.target.ty, BitType) else 32
            if stmt.op is ast.BinaryOp.ADD:
                result = mask(current + operand, width)
            else:
                result = mask(current - operand, width)
            self._exec_assign(stmt.target, result, scope)
            return
        if isinstance(stmt, ast.Push):
            target = self._eval(stmt.target, scope)
            if not isinstance(target, ArrayValue):
                raise EvalError("push target is not an array", stmt.span)
            target.push(self._eval(stmt.value, scope))
            return
        if isinstance(stmt, ast.If):
            for cond, body in stmt.arms:
                if self._eval(cond, scope):
                    for inner in body:
                        self._exec(inner, scope, block)
                    return
            for inner in stmt.orelse:
                self._exec(inner, scope, block)
            return
        if isinstance(stmt, ast.For):
            iterables = [self._eval(it, scope) for it in stmt.iterables]
            items_lists = []
            for value in iterables:
                if isinstance(value, (ArrayValue, SetValue)):
                    items_lists.append(value.valid_items())
                else:
                    raise EvalError("for loop iterable is not a collection",
                                    stmt.span)
            saved = {name: scope.loop_vars.get(name) for name in stmt.names}
            try:
                for bundle in zip(*items_lists) if items_lists else ():
                    for name, item in zip(stmt.names, bundle):
                        scope.loop_vars[name] = item
                    for inner in stmt.body:
                        self._exec(inner, scope, block)
            finally:
                for name, prev in saved.items():
                    if prev is None:
                        scope.loop_vars.pop(name, None)
                    else:
                        scope.loop_vars[name] = prev
            return
        raise EvalError(f"unknown statement {type(stmt).__name__}", stmt.span)

    def _exec_assign(self, target: ast.Expr, value: Any,
                     scope: _BlockScope) -> None:
        if isinstance(target, ast.Var):
            scope.write(target.name, value)
            return
        if isinstance(target, ast.Index):
            base = self._eval(target.base, scope)
            index = self._eval(target.index, scope)
            if not isinstance(base, ArrayValue):
                raise EvalError("indexed assignment target is not an array",
                                target.span)
            base.set(int(index), value)
            return
        raise EvalError("invalid assignment target", target.span)

    # -- expressions -----------------------------------------------------------------

    def _eval(self, expr: ast.Expr, scope: _BlockScope) -> Any:
        if isinstance(expr, ast.IntLit):
            width = expr.ty.width if isinstance(expr.ty, BitType) else 32
            return mask(expr.value, width)
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Var):
            return scope.read(expr.name)
        if isinstance(expr, ast.TupleExpr):
            return tuple(self._eval(item, scope) for item in expr.items)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, scope)
        if isinstance(expr, ast.Index):
            base = self._eval(expr.base, scope)
            index = self._eval(expr.index, scope)
            if isinstance(base, ArrayValue):
                return base.get(int(index))
            if isinstance(base, DictValue):
                return base.get(index)
            raise EvalError("cannot index this value", expr.span)
        if isinstance(expr, ast.InExpr):
            container = self._eval(expr.container, scope)
            item = self._eval(expr.item, scope)
            return item in container
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, scope)
        raise EvalError(f"unknown expression {type(expr).__name__}", expr.span)

    def _eval_unary(self, expr: ast.Unary, scope: _BlockScope) -> Any:
        operand = self._eval(expr.operand, scope)
        if expr.op is ast.UnaryOp.NOT:
            return not operand
        width = expr.ty.width if isinstance(expr.ty, BitType) else 32
        if expr.op is ast.UnaryOp.NEG:
            return mask(-operand, width)
        return mask(~operand, width)

    def _eval_binary(self, expr: ast.Binary, scope: _BlockScope) -> Any:
        op = expr.op
        if op is ast.BinaryOp.AND:
            return bool(self._eval(expr.left, scope)) and \
                bool(self._eval(expr.right, scope))
        if op is ast.BinaryOp.OR:
            return bool(self._eval(expr.left, scope)) or \
                bool(self._eval(expr.right, scope))
        left = self._eval(expr.left, scope)
        right = self._eval(expr.right, scope)
        if op is ast.BinaryOp.EQ:
            return _flat(left) == _flat(right)
        if op is ast.BinaryOp.NEQ:
            return _flat(left) != _flat(right)
        if op is ast.BinaryOp.LT:
            return left < right
        if op is ast.BinaryOp.LE:
            return left <= right
        if op is ast.BinaryOp.GT:
            return left > right
        if op is ast.BinaryOp.GE:
            return left >= right
        width = expr.ty.width if isinstance(expr.ty, BitType) else 32
        if op is ast.BinaryOp.ADD:
            return mask(left + right, width)
        if op is ast.BinaryOp.SUB:
            return mask(left - right, width)
        if op is ast.BinaryOp.MUL:
            return mask(left * right, width)
        if op is ast.BinaryOp.DIV:
            # Division by zero yields zero in both the interpreter and the
            # compiled pipeline, so the two semantics agree.
            return mask(left // right, width) if right else 0
        if op is ast.BinaryOp.MOD:
            return mask(left % right, width) if right else 0
        if op is ast.BinaryOp.BAND:
            return mask(left & right, width)
        if op is ast.BinaryOp.BOR:
            return mask(left | right, width)
        if op is ast.BinaryOp.BXOR:
            return mask(left ^ right, width)
        if op is ast.BinaryOp.SHL:
            return mask(left << (right % width), width)
        if op is ast.BinaryOp.SHR:
            return mask(left >> (right % width), width)
        raise EvalError(f"unknown operator {op.value}", expr.span)

    def _eval_call(self, expr: ast.Call, scope: _BlockScope) -> Any:
        if expr.func == "abs":
            # Absolute value over bit<n> interpreted as two's complement:
            # ``abs(a - b)`` recovers |a - b| whenever it fits in n-1 bits.
            value = self._eval(expr.args[0], scope)
            width = (expr.args[0].ty.width
                     if isinstance(expr.args[0].ty, BitType) else 32)
            return min(value, mask(-value, width))
        if expr.func == "length":
            return len(self._eval(expr.args[0], scope))
        if expr.func == "max":
            return max(self._eval(expr.args[0], scope),
                       self._eval(expr.args[1], scope))
        if expr.func == "min":
            return min(self._eval(expr.args[0], scope),
                       self._eval(expr.args[1], scope))
        raise EvalError(f"unknown function {expr.func!r}", expr.span)


def _flat(value: Any) -> Any:
    """Normalize bool vs int before equality (bool is 0/1 on the wire)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, tuple):
        return tuple(_flat(v) for v in value)
    return value


def _eval_const(expr: ast.Expr) -> Any:
    """Evaluate a constant initializer expression (no variables allowed)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.TupleExpr):
        return tuple(_eval_const(item) for item in expr.items)
    if isinstance(expr, ast.Unary) and expr.op is ast.UnaryOp.NEG:
        return -_eval_const(expr.operand)
    raise EvalError("initializers must be constant expressions", expr.span)
