"""The Indus type system (Figure 4 of the paper).

Types are immutable values with structural equality:

* ``bit<n>``  — fixed-width unsigned bitstrings,
* ``bool``,
* ``t[n]``    — fixed-capacity arrays (compiled to P4 header stacks),
* ``set<t>`` — sets with a static capacity bound,
* ``dict<k, v>`` — dictionaries (compiled to match-action tables),
* tuples      — used for dictionary keys and report payloads.

Every type knows its serialized width in bits (``width_bits``), which the
compiler uses to lay out the Hydra telemetry header and the Tofino model
uses to account for PHV usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


class Type:
    """Base class for Indus types."""

    def width_bits(self) -> int:
        """Serialized width of a value of this type, in bits."""
        raise NotImplementedError

    def is_packable(self) -> bool:
        """Whether values of this type can travel on the packet (tele vars)."""
        return True


@dataclass(frozen=True)
class BitType(Type):
    """``bit<n>`` — an unsigned integer of exactly ``n`` bits."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"bit width must be positive, got {self.width}")

    def width_bits(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"bit<{self.width}>"

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1


@dataclass(frozen=True)
class BoolType(Type):
    """``bool`` — serialized as a single bit on the wire."""

    def width_bits(self) -> int:
        return 1

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class ArrayType(Type):
    """``t[n]`` — a fixed-capacity array with a push cursor.

    Arrays model the per-hop telemetry lists of the paper: ``push`` appends
    (up to the static capacity) and ``for`` iterates over the pushed prefix.
    """

    element: Type
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"array capacity must be positive, got {self.capacity}")

    def width_bits(self) -> int:
        # One validity bit per slot mirrors P4 header-stack semantics.
        return (self.element.width_bits() + 1) * self.capacity

    def __str__(self) -> str:
        return f"{self.element}[{self.capacity}]"


@dataclass(frozen=True)
class SetType(Type):
    """``set<t>`` — a set with a static capacity bound.

    Control-plane sets are realized as match tables; tele/sensor sets are
    bounded, statically allocated collections.
    """

    element: Type
    capacity: int = 64

    def width_bits(self) -> int:
        return (self.element.width_bits() + 1) * self.capacity

    def __str__(self) -> str:
        return f"set<{self.element}>"


@dataclass(frozen=True)
class DictType(Type):
    """``dict<k, v>`` — realized as a match-action table in P4."""

    key: Type
    value: Type

    def width_bits(self) -> int:
        # Dicts never travel on the packet; only a looked-up value does.
        return self.value.width_bits()

    def is_packable(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"dict<{self.key}, {self.value}>"


@dataclass(frozen=True)
class TupleType(Type):
    """A product type, e.g. ``(bit<32>, bit<32>)`` used as a dict key."""

    elements: Tuple[Type, ...] = field(default_factory=tuple)

    def width_bits(self) -> int:
        return sum(e.width_bits() for e in self.elements)

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elements)
        return f"({inner})"


BOOL = BoolType()


def bits(width: int) -> BitType:
    """Shorthand constructor for ``bit<width>``."""
    return BitType(width)


def is_numeric(t: Type) -> bool:
    """True for types that support arithmetic (bitstrings)."""
    return isinstance(t, BitType)


def is_scalar(t: Type) -> bool:
    """True for types representable in a single PHV container."""
    return isinstance(t, (BitType, BoolType))


def types_equal(a: Type, b: Type) -> bool:
    """Structural type equality (dataclass equality already is structural)."""
    return a == b


def common_bit_width(a: Type, b: Type) -> int:
    """Width for the result of a binary arithmetic op over ``a`` and ``b``.

    Indus follows P4 in requiring equal widths, but integer literals are
    polymorphic; the checker resolves them before calling this.
    """
    assert isinstance(a, BitType) and isinstance(b, BitType)
    return max(a.width, b.width)
