"""Hand-written lexer for the Indus language.

The lexer converts Indus source text into a list of :class:`Token` values.
It supports C-style block comments (``/* ... */``), line comments
(``// ...``), decimal, hexadecimal (``0x``) and binary (``0b``) integer
literals, and the full operator set from Figure 4 of the paper plus the
prototype extensions (``+=``, ``-=``, ``%``, shifts).
"""

from __future__ import annotations

from typing import List

from .errors import LexError, SourceSpan
from .tokens import KEYWORDS, Token, TokenKind

# Multi-character operators, longest first so maximal-munch works by scanning
# this list in order.
_MULTI_OPS = [
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NEQ),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND),
    ("||", TokenKind.OR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
]

_SINGLE_OPS = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "@": TokenKind.AT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "~": TokenKind.TILDE,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


class Lexer:
    """Streaming lexer over a source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor helpers -------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _span_from(self, start_line: int, start_col: int) -> SourceSpan:
        return SourceSpan(start_line, start_col, self.line, self.column)

    # -- skipping ------------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments; raise on unterminated block comment."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError(
                        "unterminated block comment",
                        SourceSpan(start_line, start_col, self.line, self.column),
                    )
            else:
                return

    # -- token producers ------------------------------------------------------

    def _lex_number(self) -> Token:
        start_line, start_col = self.line, self.column
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            digits = "0123456789abcdefABCDEF_"
            base = 16
        elif self._peek() == "0" and self._peek(1) in "bB":
            self._advance(2)
            digits = "01_"
            base = 2
        else:
            digits = "0123456789_"
            base = 10
        while self._peek() and self._peek() in digits:
            self._advance()
        text = self.source[start : self.pos]
        span = self._span_from(start_line, start_col)
        body = text if base == 10 else text[2:]
        body = body.replace("_", "")
        if not body:
            raise LexError(f"malformed integer literal {text!r}", span)
        if self._peek().isalpha():
            raise LexError(
                f"invalid character {self._peek()!r} after integer literal", span
            )
        return Token(TokenKind.INT, text, span, value=int(body, base))

    def _lex_word(self) -> Token:
        start_line, start_col = self.line, self.column
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start : self.pos]
        span = self._span_from(start_line, start_col)
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, span)

    def _lex_operator(self) -> Token:
        start_line, start_col = self.line, self.column
        two = self.source[self.pos : self.pos + 2]
        for text, kind in _MULTI_OPS:
            if two == text:
                self._advance(2)
                return Token(kind, text, self._span_from(start_line, start_col))
        ch = self._peek()
        kind = _SINGLE_OPS.get(ch)
        if kind is None:
            raise LexError(
                f"unexpected character {ch!r}",
                SourceSpan(start_line, start_col, start_line, start_col + 1),
            )
        self._advance()
        return Token(kind, ch, self._span_from(start_line, start_col))

    # -- driver ---------------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(
                TokenKind.EOF, "", SourceSpan(self.line, self.column, self.line, self.column)
            )
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        return self._lex_operator()

    def tokenize(self) -> List[Token]:
        """Lex the whole input, returning a list ending with an EOF token."""
        tokens: List[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
