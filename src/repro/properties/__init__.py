"""The property library: every checker of Table 1 (plus the Figure 7
valley-free checker and the literal Figure 2 program) as Indus source,
with the paper's reported numbers for comparison.

Use :func:`load_source` for raw text, :func:`load_checked` for a
type-checked AST, and :func:`compile_property` for P4 IR.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..compiler.codegen import CompiledChecker, compile_program
from ..indus import CheckedProgram, Monitor, check, parse

_HERE = os.path.dirname(__file__)


@dataclass(frozen=True)
class PropertyInfo:
    """Catalog entry: where the program lives and what the paper reports."""

    name: str
    filename: str
    description: str
    paper_indus_loc: Optional[int] = None
    paper_p4_loc: Optional[int] = None
    paper_stages: Optional[int] = None
    paper_phv_pct: Optional[float] = None
    in_table1: bool = True


# Paper numbers from Table 1.  The baseline row (Aether fabric-upf) is
# 12 stages / 44.53% PHV.
BASELINE_STAGES = 12
BASELINE_PHV_PCT = 44.53

PROPERTIES: Dict[str, PropertyInfo] = {
    info.name: info
    for info in [
        PropertyInfo(
            "multi_tenancy", "multi_tenancy.indus",
            "All traffic through a ToR port facing a bare-metal server "
            "should belong to the same tenant",
            paper_indus_loc=14, paper_p4_loc=102,
            paper_stages=11, paper_phv_pct=48.44,
        ),
        PropertyInfo(
            "load_balance", "load_balance.indus",
            "Uplink ports in data center switches should load balance "
            "between specified ports",
            paper_indus_loc=37, paper_p4_loc=194,
            paper_stages=12, paper_phv_pct=48.83,
        ),
        PropertyInfo(
            "stateful_firewall", "stateful_firewall.indus",
            "Flows can only enter the network if a device inside "
            "initiated the communication",
            paper_indus_loc=23, paper_p4_loc=164,
            paper_stages=12, paper_phv_pct=49.21,
        ),
        PropertyInfo(
            "application_filtering", "application_filtering.indus",
            "Clients should only communicate with designated applications "
            "(as identified by layer 4 ports)",
            paper_indus_loc=64, paper_p4_loc=126,
            paper_stages=12, paper_phv_pct=52.14,
        ),
        PropertyInfo(
            "vlan_isolation", "vlan_isolation.indus",
            "Packets should traverse switches in the same VLAN",
            paper_indus_loc=21, paper_p4_loc=119,
            paper_stages=11, paper_phv_pct=47.85,
        ),
        PropertyInfo(
            "egress_port_validity", "egress_port_validity.indus",
            "Packets should only egress a switch at allowed ports",
            paper_indus_loc=18, paper_p4_loc=132,
            paper_stages=12, paper_phv_pct=46.09,
        ),
        PropertyInfo(
            "routing_validity", "routing_validity.indus",
            "The first and last hop should be leaf switches, interior "
            "hops spine switches",
            paper_indus_loc=21, paper_p4_loc=122,
            paper_stages=12, paper_phv_pct=46.09,
        ),
        PropertyInfo(
            "loops", "loops.indus",
            "Packets should not visit the same switch twice (4 hops)",
            paper_indus_loc=20, paper_p4_loc=156,
            paper_stages=12, paper_phv_pct=48.24,
        ),
        PropertyInfo(
            "waypointing", "waypointing.indus",
            "All packets should pass through a choke point",
            paper_indus_loc=22, paper_p4_loc=154,
            paper_stages=12, paper_phv_pct=47.85,
        ),
        PropertyInfo(
            "service_chain", "service_chain.indus",
            "Packets from s to t should pass through (w1..wn) in order",
            paper_indus_loc=26, paper_p4_loc=121,
            paper_stages=12, paper_phv_pct=47.26,
        ),
        PropertyInfo(
            "source_routing_validation", "source_routing_validation.indus",
            "A source-routed packet should pass its switches in order",
            paper_indus_loc=34, paper_p4_loc=211,
            paper_stages=12, paper_phv_pct=51.56,
        ),
        PropertyInfo(
            "valley_free", "valley_free.indus",
            "Figure 7: a packet may visit a spine switch at most once",
            in_table1=False,
        ),
        PropertyInfo(
            "load_balance_arrays", "load_balance_arrays.indus",
            "Figure 2 verbatim: per-hop load arrays checked at the edge",
            in_table1=False,
        ),
        PropertyInfo(
            "valley_free_fattree", "valley_free_fattree.indus",
            "Valley-free routing generalized to any fat-tree (per-tier "
            "monotonic up-then-down)",
            in_table1=False,
        ),
    ]
}

TABLE1_ORDER: List[str] = [
    "multi_tenancy", "load_balance", "stateful_firewall",
    "application_filtering", "vlan_isolation", "egress_port_validity",
    "routing_validity", "loops", "waypointing", "service_chain",
    "source_routing_validation",
]


def property_names(table1_only: bool = False) -> List[str]:
    if table1_only:
        return list(TABLE1_ORDER)
    return list(PROPERTIES)


def load_source(name: str) -> str:
    """Raw Indus source text of a property."""
    info = PROPERTIES.get(name)
    if info is None:
        raise KeyError(f"unknown property {name!r}; "
                       f"available: {sorted(PROPERTIES)}")
    with open(os.path.join(_HERE, info.filename)) as handle:
        return handle.read()


def load_checked(name: str) -> CheckedProgram:
    """Parse + type-check a property."""
    return check(parse(load_source(name)))


def load_monitor(name: str) -> Monitor:
    """A reference-interpreter monitor for a property."""
    return Monitor(load_checked(name))


def compile_property(name: str,
                     bindings: Optional[Dict[str, str]] = None,
                     optimize: bool = False) -> CompiledChecker:
    """Compile a property to P4 IR."""
    return compile_program(load_checked(name), name=name, bindings=bindings,
                           optimize=optimize)


def compile_suite(names: Optional[List[str]] = None,
                  base_eth_type: int = 0x88B5,
                  optimize: bool = False) -> List[CompiledChecker]:
    """Compile several properties for one multi-checker deployment.

    Each checker gets its own namespace (its property name) and a
    distinct telemetry EtherType, so all can be linked into the same
    forwarding program — the paper's "all checkers enabled" setup.
    """
    names = list(names if names is not None else TABLE1_ORDER)
    compiled = []
    for i, name in enumerate(names):
        compiled.append(compile_program(
            load_checked(name), name=name, namespace=name,
            eth_type=base_eth_type + i, optimize=optimize,
        ))
    return compiled


def indus_loc(name: str) -> int:
    """Lines of Indus code, the paper's metric: non-blank, non-comment."""
    count = 0
    in_block_comment = False
    for line in load_source(name).splitlines():
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
                stripped = stripped.split("*/", 1)[1].strip()
            else:
                continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
                continue
            stripped = stripped.split("*/", 1)[1].strip()
        if stripped.startswith("//") or not stripped:
            continue
        count += 1
    return count
