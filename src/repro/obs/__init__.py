"""The observability plane: metrics, packet-lifecycle tracing, profiling.

One :class:`Observability` handle bundles a metrics registry and a
trace-event stream and threads through every runtime layer —
:class:`~repro.p4.bmv2.Bmv2Switch`, the fastpath engine,
:class:`~repro.net.simulator.Network`,
:class:`~repro.runtime.deployment.HydraDeployment`, and the reference
monitor (:func:`repro.runtime.tracecheck.run_trace`).

The default everywhere is :data:`NULL_OBS` (null registry + null
tracer): hot paths specialize on ``obs.live`` at compile/attach time and
pay nothing when observability is off.  Turn it on by passing a live
handle at construction::

    obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
    dep = HydraDeployment(topology, compiled, forwarding, obs=obs)
    ...
    print(obs.registry.render_prometheus())
    obs.tracer.export_jsonl("trace.jsonl")

CLI surfaces: ``python -m repro metrics`` and ``python -m repro trace``.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NullRegistry, NULL_REGISTRY, DEFAULT_NS_BUCKETS,
                      DEFAULT_SECONDS_BUCKETS)
from .profile import PHASE_HISTOGRAM, profiled
from .trace import (NullTracer, NULL_TRACER, TraceEvent, Tracer,
                    DEFAULT_RING_CAPACITY, LIFECYCLE_ORDER,
                    concat_jsonl_shards)

__all__ = [
    "Counter", "DEFAULT_NS_BUCKETS", "DEFAULT_RING_CAPACITY",
    "DEFAULT_SECONDS_BUCKETS", "Gauge", "Histogram", "LIFECYCLE_ORDER",
    "MetricsRegistry", "NULL_OBS", "NULL_REGISTRY", "NULL_TRACER",
    "NullRegistry", "NullTracer", "Observability", "PHASE_HISTOGRAM",
    "TraceEvent", "Tracer", "concat_jsonl_shards", "profiled",
]


class Observability:
    """A registry + tracer pair handed down through the runtime layers."""

    __slots__ = ("registry", "tracer")

    def __init__(self, registry: Optional[object] = None,
                 tracer: Optional[object] = None):
        self.registry = NULL_REGISTRY if registry is None else registry
        self.tracer = NULL_TRACER if tracer is None else tracer

    @property
    def live(self) -> bool:
        """Whether any instrumentation is active (hot paths specialize
        on this once, at compile/attach time)."""
        return bool(self.registry.live or self.tracer.live)

    @classmethod
    def enabled(cls, trace_capacity: int = DEFAULT_RING_CAPACITY,
                ) -> "Observability":
        """A fully live handle: fresh registry + fresh tracer."""
        return cls(registry=MetricsRegistry(),
                   tracer=Tracer(capacity=trace_capacity))

    def __repr__(self) -> str:
        return (f"Observability(registry={'live' if self.registry.live else 'null'}, "
                f"tracer={'live' if self.tracer.live else 'null'})")


#: The process-wide shared "observability off" handle.
NULL_OBS = Observability()
