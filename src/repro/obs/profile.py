"""Profiling hooks: context-manager timers feeding the metrics plane.

``profiled(registry, "compile")`` times its block into the
``phase_seconds{phase="compile"}`` histogram.  With the null registry
the timer never reads the clock, so profiling hooks can stay in place
on paths that usually run unobserved (deployment construction, the
compiler driver) at no cost.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from .metrics import DEFAULT_SECONDS_BUCKETS

__all__ = ["profiled", "PHASE_HISTOGRAM"]

PHASE_HISTOGRAM = "phase_seconds"


class _NullTimer:
    __slots__ = ()
    elapsed_s = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _PhaseTimer:
    __slots__ = ("_child", "_start", "elapsed_s")

    def __init__(self, child: Any):
        self._child = child
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        self._child.observe(self.elapsed_s)
        return None


def profiled(registry: Optional[Any], phase: str):
    """A context manager timing its block into ``phase_seconds{phase}``.

    ``registry`` may be a live :class:`~repro.obs.metrics.MetricsRegistry`,
    a null registry, or ``None`` — the latter two yield a no-op timer
    that never touches the clock.
    """
    if registry is None or not getattr(registry, "live", False):
        return _NULL_TIMER
    child = registry.histogram(
        PHASE_HISTOGRAM, "wall-clock seconds per pipeline phase",
        labels=("phase",), buckets=DEFAULT_SECONDS_BUCKETS).labels(phase)
    return _PhaseTimer(child)
