"""Structured packet-lifecycle trace events.

One canonical event stream replaces the ad-hoc taps observability used
to require (the difftest harness's monkey-patched ``process()``, the
monitor's ``on_hop`` callback): every layer emits
:class:`TraceEvent`s into a :class:`Tracer`, which keeps a bounded ring
of recent events and fans each event out synchronously to subscribers.

Event kinds, in packet-lifecycle order:

========== ================================================================
``enqueue``  packet entered a NIC/port FIFO (detail: ``queue_wait_s``)
``link``     packet put on a wire (detail: ``dst``, ``tx_time_s``,
             ``latency_s``)
``parse``    packet entered a switch pipeline (the hop-entry event; the
             live :class:`~repro.net.packet.Packet` rides on
             ``event.packet`` for in-process subscribers)
``apply``    one table apply (detail: ``table``, ``result`` hit|miss)
``digest``   a digest left the data plane (detail: ``digest``)
``deparse``  packet left a switch pipeline (detail: ``egress_port``)
``drop``     packet discarded (detail: ``reason`` — ``queue_full``,
             ``ttl``, ``no_route``, or ``pipeline``)
``deliver``  packet handed to a host
``monitor_hop`` the reference monitor finished one hop (detail:
             ``hop``, plus the live state on ``detail["state"]``)
========== ================================================================

``export_jsonl`` serializes the ring as JSON lines; values that are not
JSON-safe (live monitor state, packets) are summarized via ``repr``.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, IO, Iterator, List, Optional,
                    Union)

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER",
           "DEFAULT_RING_CAPACITY", "LIFECYCLE_ORDER",
           "concat_jsonl_shards"]

#: Default trace-ring capacity: large enough for full short scenarios,
#: bounded so long replays keep memory flat.
DEFAULT_RING_CAPACITY = 1 << 16

#: Canonical ordering of kinds inside one hop (documentation + pretty
#: printing; emission order is authoritative).
LIFECYCLE_ORDER = ("enqueue", "link", "parse", "apply", "digest",
                   "deparse", "drop", "deliver", "monitor_hop")


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


@dataclass
class TraceEvent:
    """One structured event in a packet's lifecycle."""

    seq: int                       # global emission order
    kind: str
    node: str                      # switch/host/"monitor" that emitted it
    packet_id: int
    ts: Optional[float] = None     # simulation time when known
    port: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    packet: Any = None             # live Packet ref for subscribers; not
                                   # serialized

    def to_json_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"seq": self.seq, "kind": self.kind,
                               "node": self.node,
                               "packet_id": self.packet_id}
        if self.ts is not None:
            out["ts"] = self.ts
        if self.port is not None:
            out["port"] = self.port
        for key, value in self.detail.items():
            out[key] = _json_safe(value)
        return out


class Tracer:
    """Bounded ring of :class:`TraceEvent` + synchronous fan-out.

    Subscribers see every event at emission time (they may read the
    live packet on ``event.packet``); the ring keeps the most recent
    ``capacity`` events for post-hoc inspection and JSONL export, with
    ``total``/``dropped`` accounting like
    :class:`~repro.p4.bmv2.BoundedLog`.
    """

    live = True

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._ring: deque = deque(maxlen=capacity)
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self._seq = itertools.count()
        #: Optional time source (the Network wires the simulator clock
        #: here so switch-level events get simulation timestamps).
        self.clock: Optional[Callable[[], float]] = None

    @property
    def dropped(self) -> int:
        return self.total - len(self._ring)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(callback)

    def emit(self, kind: str, node: str, packet_id: int,
             ts: Optional[float] = None, port: Optional[int] = None,
             packet: Any = None, **detail: Any) -> TraceEvent:
        if ts is None and self.clock is not None:
            ts = self.clock()
        event = TraceEvent(seq=next(self._seq), kind=kind, node=node,
                           packet_id=packet_id, ts=ts, port=port,
                           detail=detail, packet=packet)
        self.total += 1
        self._ring.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    def clear(self) -> None:
        self.total = 0
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def events(self, kind: Optional[str] = None,
               packet_id: Optional[int] = None) -> List[TraceEvent]:
        """Ring contents, optionally filtered by kind and/or packet."""
        out = list(self._ring)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if packet_id is not None:
            out = [e for e in out if e.packet_id == packet_id]
        return out

    def packet_ids(self) -> List[int]:
        """Distinct packet ids in the ring, in first-seen order."""
        seen: Dict[int, None] = {}
        for event in self._ring:
            seen.setdefault(event.packet_id, None)
        return list(seen)

    # -- export ----------------------------------------------------------

    def to_jsonl_lines(self) -> List[str]:
        return [json.dumps(e.to_json_dict(), sort_keys=True)
                for e in self._ring]

    def export_jsonl(self, dest: Union[str, IO[str]]) -> int:
        """Write the ring as JSON lines; returns the event count."""
        lines = self.to_jsonl_lines()
        if hasattr(dest, "write"):
            for line in lines:
                dest.write(line + "\n")
        else:
            with open(dest, "w") as handle:
                for line in lines:
                    handle.write(line + "\n")
        return len(lines)


class NullTracer:
    """The no-op tracer: the default when observability is off."""

    live = False
    capacity = 0
    total = 0
    dropped = 0
    clock = None

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        pass

    def emit(self, kind: str, node: str, packet_id: int,
             ts: Optional[float] = None, port: Optional[int] = None,
             packet: Any = None, **detail: Any) -> None:
        return None

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def events(self, kind: Optional[str] = None,
               packet_id: Optional[int] = None) -> List[TraceEvent]:
        return []

    def packet_ids(self) -> List[int]:
        return []

    def to_jsonl_lines(self) -> List[str]:
        return []

    def export_jsonl(self, dest: Union[str, IO[str]]) -> int:
        return 0


#: The process-wide shared null tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


def concat_jsonl_shards(sources: List[str],
                        dest: Union[str, IO[str]]) -> int:
    """Concatenate per-shard ``export_jsonl`` files into one stream.

    Each worker of the sharded fleet runner (:mod:`repro.parallel`)
    exports its own tracer ring; this stitches the shards back into a
    single JSONL document: lines keep their within-shard order, ``seq``
    is rewritten to a fresh global sequence (so the merged stream is
    strictly ordered, like a single tracer's export would be), and every
    line gains a ``shard`` field naming the source it came from.
    Missing shard files are skipped — a killed worker may never have
    flushed one.  Returns the number of lines written.
    """
    seq = itertools.count()
    lines: List[str] = []
    for index, path in enumerate(sources):
        try:
            with open(path) as handle:
                shard_lines = handle.readlines()
        except OSError:
            continue
        for line in shard_lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            record["seq"] = next(seq)
            record["shard"] = index
            lines.append(json.dumps(record, sort_keys=True))
    if hasattr(dest, "write"):
        for line in lines:
            dest.write(line + "\n")
    else:
        with open(dest, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
    return len(lines)
