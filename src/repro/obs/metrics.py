"""Low-overhead metrics: counters, gauges, histograms with labels.

Two registry implementations share one interface:

* :class:`MetricsRegistry` — the live registry.  Instruments are
  created idempotently (``registry.counter(name, ...)`` returns the
  same object every time) and label values select per-series children
  (``counter.labels("s1", "hit").inc()``), mirroring the Prometheus
  client model.  ``render_prometheus()`` emits the text exposition
  format; ``to_dict()`` a JSON-safe dump.
* :class:`NullRegistry` — the default everywhere.  Every method returns
  a shared no-op instrument, so instrumented call sites cost one method
  call at most — and the hot paths (``repro.p4.fastpath``) specialize
  at compile time on ``registry.live`` and pay **nothing** when
  observability is off.  The bench guard
  (``benchmarks/bench_guard.py``) holds that line.

Naming conventions (see docs/INTERNALS.md § observability):
``<subsystem>_<thing>_total`` for counters, ``<thing>_seconds`` /
``<thing>_ns_per_packet`` for histograms, plain nouns for gauges.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "DEFAULT_NS_BUCKETS", "DEFAULT_SECONDS_BUCKETS",
]

#: Hard ceiling on distinct label-value combinations per metric; a
#: runaway label (e.g. a packet id used as a label) raises instead of
#: silently eating memory.
MAX_LABEL_SETS = 4096

#: Default buckets for per-packet latency histograms (nanoseconds).
DEFAULT_NS_BUCKETS: Tuple[float, ...] = (
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 1e7)

#: Default buckets for phase timers (seconds).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0)


class MetricError(ValueError):
    """Raised on inconsistent metric registration or label misuse."""


def _format_labels(names: Sequence[str], values: Sequence[Any]) -> str:
    if not names:
        return ""
    pairs = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + pairs + "}"


class _Metric:
    """Shared child-series bookkeeping for labelled instruments."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._children: Dict[Tuple, Any] = {}

    def labels(self, *values: Any):
        if len(values) != len(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label value(s) {self.label_names}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= MAX_LABEL_SETS:
                raise MetricError(
                    f"metric {self.name!r} exceeded {MAX_LABEL_SETS} "
                    "label sets — an unbounded value is being used as "
                    "a label")
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self):
        raise NotImplementedError

    def _series(self) -> Iterable[Tuple[Tuple, Any]]:
        if self.label_names:
            return self._children.items()
        return [((), self._unlabelled())]

    def _unlabelled(self):
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Counter(_Metric):
    """A monotonically increasing counter (optionally labelled)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._self_child = _CounterChild()

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def _unlabelled(self) -> _CounterChild:
        return self._self_child

    def inc(self, amount: int = 1) -> None:
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labelled {self.label_names}; "
                "use .labels(...).inc()")
        self._self_child.inc(amount)

    @property
    def value(self) -> int:
        return self._self_child.value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._self_child = _GaugeChild()

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def _unlabelled(self) -> _GaugeChild:
        return self._self_child

    def set(self, value: float) -> None:
        self._self_child.set(value)

    def inc(self, amount: float = 1) -> None:
        self._self_child.inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._self_child.dec(amount)

    @property
    def value(self) -> float:
        return self._self_child.value


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS):
        super().__init__(name, help, label_names)
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError(
                f"histogram {name!r} buckets must be sorted and non-empty")
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self._self_child = _HistogramChild(self.buckets)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def _unlabelled(self) -> _HistogramChild:
        return self._self_child

    def observe(self, value: float) -> None:
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labelled {self.label_names}; "
                "use .labels(...).observe()")
        self._self_child.observe(value)

    @property
    def count(self) -> int:
        return self._self_child.count

    @property
    def sum(self) -> float:
        return self._self_child.sum


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """The live registry: get-or-create instruments by name."""

    live = True

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, kind: str, name: str, help: str,
             label_names: Sequence[str], **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}")
            if existing.label_names != tuple(label_names):
                raise MetricError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.label_names}, not {tuple(label_names)}")
            return existing
        metric = _KINDS[kind](name, help, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
                  ) -> Histogram:
        return self._get("histogram", name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def value(self, name: str, *label_values: Any) -> Any:
        """Convenience reader: the current value of one series (0 for a
        counter/gauge series that never incremented)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if label_values:
            key = tuple(str(v) for v in label_values)
            child = metric._children.get(key)
            if child is None:
                return 0
        else:
            child = metric._unlabelled()
        return child.value if hasattr(child, "value") else child

    # -- export ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key, child in sorted(metric._series()):
                label_text = _format_labels(metric.label_names, key)
                if metric.kind == "histogram":
                    # observe() fills buckets cumulatively already.
                    for bound, bucket_count in zip(child.buckets,
                                                   child.counts):
                        pairs = ",".join(
                            f'{n}="{v}"' for n, v in zip(
                                metric.label_names + ("le",),
                                key + (float(bound),)))
                        lines.append(
                            f"{name}_bucket{{{pairs}}} {bucket_count}")
                    pairs = ",".join(
                        f'{n}="{v}"' for n, v in zip(
                            metric.label_names + ("le",), key + ("+Inf",)))
                    lines.append(f"{name}_bucket{{{pairs}}} {child.count}")
                    lines.append(f"{name}_sum{label_text} {child.sum}")
                    lines.append(f"{name}_count{label_text} {child.count}")
                else:
                    lines.append(f"{name}{label_text} {child.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dump: {name: {kind, help, series: [...]}}."""
        out: Dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            series = []
            for key, child in sorted(metric._series()):
                labels = dict(zip(metric.label_names, key))
                if metric.kind == "histogram":
                    series.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "mean": child.mean,
                        "buckets": {repr(float(b)): c for b, c in
                                    zip(child.buckets, child.counts)},
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            entry = {"kind": metric.kind, "help": metric.help,
                     "label_names": list(metric.label_names),
                     "series": series}
            if metric.kind == "histogram":
                entry["buckets"] = [float(b) for b in metric.buckets]
            out[name] = entry
        return out

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- fleet aggregation ----------------------------------------------

    def merge(self, other: Any) -> "MetricsRegistry":
        """Fold another registry (or its :meth:`to_dict` dump) into this
        one and return ``self``.

        This is the aggregation step of the sharded fleet runner
        (:mod:`repro.parallel`): each worker process accumulates into a
        private registry, ships ``to_dict()`` over the result queue, and
        the parent merges the shard snapshots into one fleet-wide view.
        Semantics per kind:

        * **counter** — values add (shard totals sum to the fleet total);
        * **gauge** — the merged value is the max (the only gauge today
          is ``sim_time_seconds``, a clock/high-water-mark reading);
        * **histogram** — per-bucket counts, ``sum`` and ``count`` add;
          bucket boundaries must match exactly or :class:`MetricError`
          is raised.

        Label sets union, still subject to the ``MAX_LABEL_SETS``
        ceiling, and merging is associative for counters and histograms
        (and for gauges, since max is associative), so any merge order
        over the shard snapshots yields the same fleet snapshot.
        """
        data = other.to_dict() if hasattr(other, "to_dict") else other
        for name in sorted(data):
            info = data[name]
            kind = info["kind"]
            if kind not in _KINDS:
                raise MetricError(
                    f"cannot merge metric {name!r} of unknown kind "
                    f"{kind!r}")
            # Declare the metric up front so names with zero series
            # (declared but never observed on that shard) still survive
            # the dump -> merge round trip.
            label_names = tuple(info.get(
                "label_names",
                tuple(info["series"][0]["labels"]) if info["series"]
                else ()))
            if kind == "histogram":
                buckets = tuple(sorted(
                    float(b) for b in info.get(
                        "buckets",
                        info["series"][0]["buckets"] if info["series"]
                        else DEFAULT_SECONDS_BUCKETS)))
                metric = self.histogram(name, info.get("help", ""),
                                        labels=label_names,
                                        buckets=buckets)
                if metric.buckets != buckets:
                    raise MetricError(
                        f"histogram {name!r} bucket mismatch on "
                        f"merge: {metric.buckets} vs {buckets}")
            elif kind == "counter":
                metric = self.counter(name, info.get("help", ""),
                                      labels=label_names)
            else:
                metric = self.gauge(name, info.get("help", ""),
                                    labels=label_names)
            for series in info["series"]:
                label_values = tuple(series["labels"].values())
                child = (metric.labels(*label_values) if label_names
                         else metric._unlabelled())
                if kind == "counter":
                    child.inc(series["value"])
                elif kind == "gauge":
                    child.set(max(child.value, series["value"]))
                else:
                    for bound, count in series["buckets"].items():
                        idx = metric.buckets.index(float(bound))
                        child.counts[idx] += count
                    child.sum += series["sum"]
                    child.count += series["count"]
        return self


class _NullInstrument:
    """One shared do-nothing instrument covering every metric kind."""

    __slots__ = ()

    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def labels(self, *_values: Any) -> "_NullInstrument":
        return self

    def inc(self, _amount: int = 1) -> None:
        pass

    def dec(self, _amount: float = 1) -> None:
        pass

    def set(self, _value: float) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The no-op registry: the default when observability is off.

    Every factory returns one shared null instrument whose methods do
    nothing; hot paths additionally specialize on ``live`` and skip the
    call entirely.
    """

    live = False

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = (),) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def value(self, name: str, *label_values: Any) -> int:
        return 0

    def render_prometheus(self) -> str:
        return ""

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def render_json(self, indent: int = 2) -> str:
        return "{}"

    def merge(self, other: Any) -> "NullRegistry":
        return self


#: The process-wide shared null registry (stateless, safe to share).
NULL_REGISTRY = NullRegistry()
