"""Deterministic partitioning of a seed range into worker shards.

The fleet runner's determinism contract — for a fixed ``--seed`` the
set of scenario verdicts is identical for any worker count — starts
here: every scenario is a pure function of its seed, so *any*
partition preserves the verdict set, and this one is additionally
stable (same inputs, same shards, no randomness, no dependence on
process scheduling).

Seeds are dealt round-robin (shard ``k`` gets ``seed + k``,
``seed + k + shards``, …) rather than in contiguous blocks: scenario
cost varies with the seed (topology size, packet count), and
interleaving spreads expensive neighborhoods evenly across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Shard", "partition_seeds"]


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the campaign: an index and its seeds, in
    the order the worker will run them."""

    index: int
    seeds: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.seeds)


def partition_seeds(seed: int, iters: int, shards: int) -> List[Shard]:
    """Split ``[seed, seed + iters)`` into ``shards`` round-robin
    shards.  Shards partition the range exactly (disjoint, complete);
    trailing shards may be one seed shorter.  Empty shards are dropped,
    so the result may be shorter than ``shards`` when ``iters`` is
    small."""
    if iters < 0:
        raise ValueError(f"iters must be >= 0, got {iters}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    out: List[Shard] = []
    for k in range(shards):
        seeds = tuple(range(seed + k, seed + iters, shards))
        if seeds:
            out.append(Shard(index=k, seeds=seeds))
    return out
