"""The sharded scenario-fleet runner.

``run_fleet`` partitions a difftest seed range into deterministic
round-robin shards (:mod:`.shard`), spawns one worker process per
shard, and streams per-scenario results back over per-worker pipes.
Each worker runs the full compile→deploy→dual-engine→compare pipeline
(:func:`repro.difftest.run_seed`) on its shard, accumulating into a
private metrics registry whose snapshot the parent merges
(:meth:`~repro.obs.metrics.MetricsRegistry.merge`) into the caller's —
so ``difftest --workers N`` reports fleet-wide counters identically to
the serial path.

Wire protocol: each worker incarnation owns one one-way
:func:`multiprocessing.Pipe`; ``Connection.send`` is synchronous (no
feeder thread), so once a worker starts executing a scenario its
``("start", seed)`` marker is already in the kernel buffer — the parent
can always attribute a crash to the in-flight seed, even after SIGKILL.
The parent multiplexes with :func:`multiprocessing.connection.wait`.

Robustness model (the part that makes fleets usable, not just fast):

* **per-scenario timeout** — a worker that sits on one scenario past
  ``FleetOptions.timeout_s`` is SIGKILLed; the hung seed is quarantined
  into a reproducer bundle (reusing :func:`repro.difftest.minimize.
  dump_reproducer`) and a fresh worker resumes the rest of the shard;
* **crashed-worker respawn** — a worker that dies mid-scenario
  (segfault, OOM kill, injected SIGKILL) is respawned on its remaining
  seeds; the in-flight seed is retried up to
  ``FleetOptions.max_seed_retries`` times, then quarantined;
* **graceful Ctrl-C** — KeyboardInterrupt terminates the workers,
  drains whatever results already reached the pipes, and returns a
  partial summary flagged ``interrupted=True``.

Determinism: scenarios are pure functions of their seed and shards
partition the seed range exactly, so for a fixed seed the mapping
``{seed: verdict}`` is identical for any worker count (completion
*order* varies; content does not).

``FaultPlan`` is the built-in fault injection used by the fault-path
tests and the CI crash smoke: it makes a worker SIGKILL itself (or hang
forever) when it reaches a chosen seed, exercising exactly the recovery
machinery above.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..difftest import (DiffFailure, DifftestSummary, SeedOutcome,
                        dump_reproducer, gen_scenario, run_seed)
from ..obs import MetricsRegistry, Observability, Tracer, \
    concat_jsonl_shards
from .shard import Shard, partition_seeds

__all__ = ["FaultPlan", "FleetOptions", "run_fleet"]

#: Name of the merged fleet trace inside ``FleetOptions.trace_dir``.
FLEET_TRACE_NAME = "fleet_trace.jsonl"


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for tests and smoke runs.

    A worker about to run a seed in ``crash_seeds`` SIGKILLs itself —
    every attempt, modelling a scenario that reliably kills its host
    process.  A seed in ``hang_seeds`` makes the worker sleep past any
    reasonable deadline, modelling a looping program."""

    crash_seeds: FrozenSet[int] = frozenset()
    hang_seeds: FrozenSet[int] = frozenset()
    hang_sleep_s: float = 3600.0


@dataclass
class FleetOptions:
    """Fleet-runner knobs (everything but the seed range itself)."""

    workers: int = 2
    inject_bug: bool = False
    #: Run the dataflow optimizer on every compiled scenario checker.
    optimize: bool = False
    #: Engine set each scenario cross-checks (None = the harness
    #: default, interp vs fast).
    engines: Optional[Tuple[str, ...]] = None
    #: Per-scenario wall-clock budget; past it the worker is killed and
    #: the seed quarantined (no retry — a deterministic hang would only
    #: burn the budget again).
    timeout_s: float = 60.0
    #: How many times a seed whose worker *crashed* is retried on a
    #: fresh worker before being quarantined.
    max_seed_retries: int = 1
    #: Crash-loop backstop: respawns per shard that are not attributed
    #: to a specific seed (e.g. a worker dying at startup).
    max_respawns_per_shard: int = 4
    quarantine_dir: str = "difftest_failures"
    #: When set, each worker exports a per-shard JSONL lifecycle trace
    #: (one ``scenario`` event per seed) and the parent concatenates
    #: them into ``<trace_dir>/fleet_trace.jsonl``.
    trace_dir: Optional[str] = None
    fault: Optional[FaultPlan] = None
    poll_interval_s: float = 0.05


@dataclass(frozen=True)
class _WorkerConfig:
    """The pickle-safe bundle a worker process is configured with."""

    inject_bug: bool
    metrics: bool
    trace_path: Optional[str]
    fault: Optional[FaultPlan]
    optimize: bool = False
    engines: Optional[Tuple[str, ...]] = None


def _worker_main(shard_index: int, seeds: Tuple[int, ...], conn: Any,
                 cfg: _WorkerConfig) -> None:
    """One worker incarnation: run every seed of the shard, streaming
    ``("start", seed)`` / ``("result", outcome, dump)`` / ``("done",
    dump)`` over its pipe.

    Runs in a child process.  SIGINT is ignored so Ctrl-C is handled
    once, by the parent, which then terminates and drains the fleet.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    registry = MetricsRegistry() if cfg.metrics else None
    tracer = Tracer() if cfg.trace_path else None
    node = f"shard{shard_index}"
    for seed in seeds:
        conn.send(("start", seed))
        if cfg.fault is not None:
            if seed in cfg.fault.crash_seeds:
                os.kill(os.getpid(), signal.SIGKILL)
            if seed in cfg.fault.hang_seeds:
                time.sleep(cfg.fault.hang_sleep_s)
        outcome = run_seed(seed, inject_bug=cfg.inject_bug,
                           registry=registry, optimize=cfg.optimize,
                           engines=cfg.engines)
        if tracer is not None:
            tracer.emit("scenario", node, seed, verdict=outcome.verdict,
                        packets=outcome.packets_run)
            # Re-export after every scenario so a later kill loses at
            # most the in-flight seed's event, not the whole shard.
            tracer.export_jsonl(cfg.trace_path)
        dump = registry.to_dict() if registry is not None else None
        conn.send(("result", outcome, dump))
    conn.send(("done",
               registry.to_dict() if registry is not None else None))
    conn.close()


class _WorkerState:
    """Parent-side bookkeeping for one shard's (current) worker."""

    def __init__(self, shard: Shard):
        self.shard = shard
        self.pending: List[int] = list(shard.seeds)
        self.incarnation = 0
        self.proc: Optional[Any] = None
        self.conn: Optional[Any] = None         # parent end of the pipe
        self.inflight: Optional[int] = None
        self.deadline: Optional[float] = None
        self.last_dump: Optional[Dict[str, Any]] = None
        self.merged = False
        self.done = False
        self.respawns = 0               # not attributed to a seed
        self.retries: Dict[int, int] = {}
        self.trace_paths: List[str] = []

    def close_conn(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None


class _Fleet:
    """One ``run_fleet`` invocation's mutable state."""

    def __init__(self, seed: int, iters: int, options: FleetOptions,
                 obs: Optional[Observability],
                 progress: Optional[Callable[[str], None]]):
        self.options = options
        self.obs = obs
        self.progress = progress
        self.metrics = obs is not None and obs.registry.live
        self.ctx = multiprocessing.get_context()
        self.outcomes: Dict[int, SeedOutcome] = {}
        self.quarantined: List[Dict[str, Any]] = []
        self.respawns_total = 0
        self.interrupted = False
        self.total = iters
        self.states = [_WorkerState(shard)
                       for shard in partition_seeds(seed, iters,
                                                    options.workers)]

    # -- lifecycle -----------------------------------------------------

    def _say(self, message: str) -> None:
        if self.progress:
            self.progress(message)

    def _spawn(self, st: _WorkerState) -> None:
        trace_path = None
        if self.options.trace_dir:
            os.makedirs(self.options.trace_dir, exist_ok=True)
            trace_path = os.path.join(
                self.options.trace_dir,
                f"shard{st.shard.index}.{st.incarnation}.jsonl")
            st.trace_paths.append(trace_path)
        cfg = _WorkerConfig(inject_bug=self.options.inject_bug,
                            metrics=self.metrics, trace_path=trace_path,
                            fault=self.options.fault,
                            optimize=self.options.optimize,
                            engines=self.options.engines)
        reader, writer = self.ctx.Pipe(duplex=False)
        st.conn = reader
        st.proc = self.ctx.Process(
            target=_worker_main,
            args=(st.shard.index, tuple(st.pending), writer, cfg),
            daemon=True)
        st.inflight = None
        st.deadline = None
        st.last_dump = None
        st.merged = False
        st.proc.start()
        # The parent must not hold the write end open, or worker death
        # would never surface as EOF on the read end.
        writer.close()

    def _respawn(self, st: _WorkerState) -> None:
        st.close_conn()
        if not st.pending:
            st.done = True
            return
        st.incarnation += 1
        self.respawns_total += 1
        self._spawn(st)

    def _merge_incarnation(self, st: _WorkerState) -> None:
        """Fold the incarnation's latest registry snapshot into the
        caller's registry, exactly once per incarnation."""
        if self.metrics and st.last_dump is not None and not st.merged:
            self.obs.registry.merge(st.last_dump)
        st.merged = True

    def _quarantine(self, st: _WorkerState, seed: int, reason: str,
                    message: str) -> None:
        scenario = gen_scenario(seed)
        failure = DiffFailure(kind=reason, message=message,
                              scenario=scenario)
        json_path, _ = dump_reproducer(scenario, failure,
                                       self.options.quarantine_dir,
                                       name=f"quarantine_seed{seed}")
        self.quarantined.append({"seed": seed, "reason": reason,
                                 "bundle": json_path})
        if seed in st.pending:
            st.pending.remove(seed)
        self._say(f"seed {seed}: quarantined ({reason}) -> {json_path}")

    # -- event handling ------------------------------------------------

    def _handle_message(self, st: _WorkerState, message: Tuple) -> None:
        kind = message[0]
        if kind == "start":
            st.inflight = message[1]
            st.deadline = time.monotonic() + self.options.timeout_s
        elif kind == "result":
            outcome, dump = message[1], message[2]
            self.outcomes[outcome.seed] = outcome
            st.inflight = None
            st.deadline = None
            st.last_dump = dump
            if outcome.seed in st.pending:
                st.pending.remove(outcome.seed)
            if outcome.failure is not None:
                self._say(f"seed {outcome.seed}: FAIL {outcome.failure}")
            elif len(self.outcomes) % 25 == 0:
                self._say(f"{len(self.outcomes)}/{self.total} "
                          "scenarios clean")
        elif kind == "done":
            if message[1] is not None:
                st.last_dump = message[1]
            self._merge_incarnation(st)
            st.done = True
            st.close_conn()

    def _handle_death(self, st: _WorkerState) -> None:
        """The worker exited without sending ``done`` — a crash."""
        self._merge_incarnation(st)
        seed = st.inflight
        if seed is None:
            # Died between scenarios (or at startup).  If nothing is
            # pending the shard actually finished; otherwise respawn,
            # bounded by the crash-loop backstop.
            if not st.pending:
                st.done = True
                st.close_conn()
                return
            st.respawns += 1
            if st.respawns > self.options.max_respawns_per_shard:
                self._say(f"shard {st.shard.index}: crash loop, "
                          f"quarantining {len(st.pending)} seed(s)")
                for pending_seed in list(st.pending):
                    self._quarantine(st, pending_seed, "worker_crash",
                                     "worker crash loop (not attributable "
                                     "to one seed)")
                st.done = True
                st.close_conn()
                return
            self._say(f"shard {st.shard.index}: worker died idle, "
                      "respawning")
            self._respawn(st)
            return
        retries = st.retries.get(seed, 0)
        if retries < self.options.max_seed_retries:
            st.retries[seed] = retries + 1
            self._say(f"shard {st.shard.index}: worker crashed on seed "
                      f"{seed}, retry {retries + 1}")
        else:
            self._quarantine(st, seed, "worker_crash",
                             f"worker killed while running seed {seed} "
                             f"({retries} retrie(s) exhausted)")
        self._respawn(st)

    def _handle_timeout(self, st: _WorkerState) -> None:
        seed = st.inflight
        st.proc.kill()
        st.proc.join(5)
        self._merge_incarnation(st)
        self._quarantine(st, seed, "timeout",
                         f"scenario exceeded the "
                         f"{self.options.timeout_s:.1f}s wall-clock "
                         "budget; worker killed")
        self._respawn(st)

    # -- main loop -----------------------------------------------------

    def run(self) -> None:
        for st in self.states:
            self._spawn(st)
        try:
            while not all(st.done for st in self.states):
                self._drain(timeout=self.options.poll_interval_s)
                now = time.monotonic()
                for st in self.states:
                    if st.done:
                        continue
                    if st.conn is None and st.proc.exitcode is not None:
                        # Pipe hit EOF and the process is gone: a crash.
                        self._handle_death(st)
                    elif (st.deadline is not None and now > st.deadline):
                        self._handle_timeout(st)
        except KeyboardInterrupt:
            self.interrupted = True
            self._say("interrupted — draining workers")
        finally:
            self._shutdown()

    def _drain(self, timeout: Optional[float]) -> int:
        """Receive every message currently available; returns how many
        were handled.  A pipe at EOF is closed here; the death verdict
        happens in the main loop once the process is observed dead."""
        conns = {st.conn: st for st in self.states
                 if not st.done and st.conn is not None}
        if not conns:
            if timeout:
                time.sleep(timeout)
            return 0
        handled = 0
        try:
            ready = _wait_connections(list(conns), timeout=timeout)
        except OSError:
            return 0
        for conn in ready:
            st = conns[conn]
            # Drain this connection completely: messages already sent
            # must be processed before any death verdict.
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    st.close_conn()
                    break
                self._handle_message(st, message)
                handled += 1
                if st.done:
                    break
        return handled

    def _shutdown(self) -> None:
        for st in self.states:
            if st.proc is not None and st.proc.is_alive():
                st.proc.terminate()
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if not self._drain(timeout=0.05):
                if all(st.proc is None or not st.proc.is_alive()
                       for st in self.states):
                    break
        for st in self.states:
            if st.proc is None:
                continue
            st.proc.join(2)
            if st.proc.is_alive():
                st.proc.kill()
                st.proc.join(2)
            if not st.done:
                self._merge_incarnation(st)
            st.close_conn()

    # -- result assembly -----------------------------------------------

    def summary(self) -> DifftestSummary:
        summary = DifftestSummary(workers=self.options.workers,
                                  respawns=self.respawns_total,
                                  interrupted=self.interrupted)
        for seed in sorted(self.outcomes):
            summary.absorb(self.outcomes[seed])
        for record in sorted(self.quarantined, key=lambda r: r["seed"]):
            summary.quarantined.append(record)
            summary.verdicts[record["seed"]] = \
                f"quarantined:{record['reason']}"
        if self.options.trace_dir:
            paths = [p for st in self.states for p in st.trace_paths]
            concat_jsonl_shards(
                paths, os.path.join(self.options.trace_dir,
                                    FLEET_TRACE_NAME))
        return summary


def run_fleet(seed: int, iters: int, *,
              options: Optional[FleetOptions] = None,
              obs: Optional[Observability] = None,
              progress: Optional[Callable[[str], None]] = None,
              ) -> DifftestSummary:
    """Run a difftest campaign sharded across worker processes.

    The public entry points are :func:`repro.api.difftest` and
    ``python -m repro difftest --workers N``, which dispatch here via
    :func:`repro.difftest.run_difftest`.  Returns the same
    :class:`~repro.difftest.DifftestSummary` shape as the serial path,
    with the fleet fields (``workers``, ``quarantined``, ``respawns``,
    ``interrupted``) populated.
    """
    options = options or FleetOptions()
    if options.workers < 1:
        raise ValueError(f"workers must be >= 1, got {options.workers}")
    fleet = _Fleet(seed, iters, options, obs, progress)
    fleet.run()
    return fleet.summary()
