"""Sharded parallel execution of difftest/bench fleets.

The differential oracle and the throughput sweeps earn confidence
through volume — thousands of generated programs and scenarios per
session — and one core caps that.  This package scales the fan-out
across worker processes while keeping the results bit-identical to the
serial path:

* :mod:`.shard` — deterministic round-robin partitioning of a seed
  range into per-worker shards;
* :mod:`.runner` — the fleet runner: spawn, stream, merge; plus the
  robustness layer (per-scenario timeout kill, crashed-worker respawn
  with bounded retry, quarantine reproducer bundles, graceful Ctrl-C
  draining) and :class:`FaultPlan` fault injection for testing it.

Public surface: :func:`repro.api.difftest(..., workers=N)
<repro.api.difftest>` and ``python -m repro difftest --workers N``;
see docs/INTERNALS.md §9 for the shard protocol and merge semantics.
"""

from .runner import FLEET_TRACE_NAME, FaultPlan, FleetOptions, run_fleet
from .shard import Shard, partition_seeds

__all__ = [
    "FLEET_TRACE_NAME", "FaultPlan", "FleetOptions", "Shard",
    "partition_seeds", "run_fleet",
]
