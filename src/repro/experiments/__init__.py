"""Evaluation harnesses: one module per table/figure of the paper.

* :mod:`repro.experiments.table1` — LoC / stages / PHV for every checker;
* :mod:`repro.experiments.fig12` — RTT overhead (series, CDF, t-test);
* :mod:`repro.experiments.throughput` — replay throughput parity;
* :mod:`repro.experiments.bench` — interp-vs-fast engine benchmark;
* :mod:`repro.experiments.netbench` — paper-rate traffic-plane replay
  benchmark (``python -m repro bench --net``);
* :mod:`repro.experiments.aetherbench` — million-subscriber Aether
  soak benchmark (``python -m repro aether``).
"""

from .aetherbench import (AETHER_TARGET_SESSIONS, format_aether_bench,
                          measure_baseline_cost, run_soak)
from .bench import format_bench, measure_pps, run_bench
from .fig12 import (ALL_CHECKERS, Fig12Config, Fig12Result, RttRun,
                    build_fabric, configure_checker_controls,
                    install_fabric_routes, run_fig12, run_rtt_experiment)
from .netbench import (NET_TARGET_PPS, check_equivalence, format_net_bench,
                       measure_replay, run_net_bench)
from .table1 import Table1Row, compute_row, compute_table, format_table
from .throughput import ThroughputResult, run_replay

__all__ = [
    "AETHER_TARGET_SESSIONS", "ALL_CHECKERS", "Fig12Config",
    "Fig12Result", "NET_TARGET_PPS", "RttRun", "Table1Row",
    "ThroughputResult", "build_fabric", "check_equivalence",
    "compute_row", "compute_table", "configure_checker_controls",
    "format_aether_bench", "format_bench", "format_net_bench",
    "format_table", "install_fabric_routes", "measure_baseline_cost",
    "measure_pps", "measure_replay", "run_bench", "run_fig12",
    "run_net_bench", "run_replay", "run_rtt_experiment",
    "run_soak",
]
