"""Figure 12 reproduction: Hydra's performance overhead.

The paper's setup: the Aether leaf-spine fabric; bidirectional UDP
background traffic saturating ~half of each link via ECMP; a fast ping
between servers on different leaves; RTT compared between a baseline
run and a run with *all* checkers enabled, over time (12a) and as a CDF
with a t-test (12b).

Scaling substitution: our substrate is an event-driven simulator, so we
scale the experiment down linearly — link rate, offered load, ping
interval, and duration shrink together; utilization ratios and therefore
distribution *shapes* are preserved.  The latency model charges each
switch ``stages x stage_delay`` (independent of the program, since the
checkers add no stages) plus serialization of actual bytes — so Hydra's
only cost is its telemetry bytes on the wire, which is why the paper
finds no significant difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aether.upf import upf_program
from ..net.simulator import Network
from ..net.topology import Topology, leaf_spine
from ..obs import NULL_OBS, Observability, profiled
from ..p4.bmv2 import Bmv2Switch
from ..properties import TABLE1_ORDER, compile_suite
from ..runtime.deployment import HydraDeployment
from ..stats import TTestResult, cdf_points, mean, welch_t_test
from ..workloads.traffic import EchoResponder, Pinger, UdpLoadGenerator

# Checkers that can run meaningfully on plain fabric transit traffic.
ALL_CHECKERS: List[str] = list(TABLE1_ORDER)


@dataclass
class Fig12Config:
    """Scaled-down experiment parameters (see module docstring)."""

    link_bandwidth_bps: float = 100e6
    link_latency_s: float = 1e-6
    load_bps_per_pair: float = 40e6
    load_packet_len: int = 1400
    duration_s: float = 0.4
    ping_interval_s: float = 0.002
    seed: int = 11
    engine: str = "fast"  # Bmv2Switch execution engine for every switch
    optimize: bool = False  # run the dataflow optimizer on every checker
    batched: bool = False  # Network batch hot loop (timing-identical)


@dataclass
class RttRun:
    """One experiment arm: its RTT series and summary stats."""

    label: str
    series: List[Tuple[float, float]]  # (send time s, RTT ms)
    rtts_ms: List[float]
    packets_lost: int = 0

    @property
    def mean_ms(self) -> float:
        return mean(self.rtts_ms)


@dataclass
class Fig12Result:
    baseline: RttRun
    with_checkers: RttRun
    t_test: TTestResult = field(default=None)  # type: ignore[assignment]

    def cdfs(self, num_points: int = 50):
        return (cdf_points(self.baseline.rtts_ms, num_points),
                cdf_points(self.with_checkers.rtts_ms, num_points))


def build_fabric(checkers: Optional[List[str]],
                 config: Fig12Config,
                 obs: Optional[Observability] = None,
                 ) -> Tuple[Network, Optional[HydraDeployment]]:
    """The Aether fabric (2x2 leaf-spine running fabric-upf), with or
    without a full suite of Hydra checkers linked in."""
    obs = obs if obs is not None else NULL_OBS
    topology = leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2,
                          link_latency_s=config.link_latency_s,
                          bandwidth_bps=config.link_bandwidth_bps)
    forwarding = {name: upf_program(f"fabric_upf_{name}")
                  for name in topology.switches}
    deployment: Optional[HydraDeployment] = None
    if checkers:
        with profiled(obs.registry, "compile"):
            compiled = compile_suite(checkers, optimize=config.optimize)
        deployment = HydraDeployment(topology, compiled, forwarding,
                                     engine=config.engine, obs=obs,
                                     batched=config.batched)
        network = deployment.network
        switches = deployment.switches
    else:
        switches = {
            name: Bmv2Switch(forwarding[name], name=name,
                             switch_id=spec.switch_id,
                             engine=config.engine, obs=obs)
            for name, spec in topology.switches.items()
        }
        network = Network(topology, switches, obs=obs,
                          batched=config.batched)
    install_fabric_routes(topology, switches)
    if deployment is not None:
        configure_checker_controls(deployment, topology)
    return network, deployment


def install_fabric_routes(topology: Topology,
                           switches: Dict[str, Bmv2Switch]) -> None:
    """Host routes + ECMP default on leaves; leaf subnets on spines."""
    leaves = sorted(n for n, s in topology.switches.items() if s.is_leaf)
    spines = sorted(n for n, s in topology.switches.items() if s.is_spine)
    hosts_by_leaf: Dict[str, List[Tuple[str, int]]] = {l: [] for l in leaves}
    for host in topology.hosts:
        attach = topology.host_attachment(host)
        hosts_by_leaf[attach.node].append((host, attach.port))
    for li, leaf in enumerate(leaves, start=1):
        bmv2 = switches[leaf]
        for host, port in hosts_by_leaf[leaf]:
            bmv2.insert_entry("upf_routes",
                              [(topology.hosts[host].ipv4, 32)],
                              "upf_route", [port])
        uplink0 = max(p for _, p in hosts_by_leaf[leaf]) + 1
        bmv2.insert_entry("upf_routes", [(0, 0)],
                          "upf_route_ecmp", [len(spines)])
        for j in range(len(spines)):
            bmv2.insert_entry("upf_ecmp_table", [j],
                              "upf_ecmp_port", [uplink0 + j])
    for spine in spines:
        bmv2 = switches[spine]
        for li, leaf in enumerate(leaves, start=1):
            prefix = (10 << 24) | (li << 8)
            bmv2.insert_entry("upf_routes", [(prefix, 24)],
                              "upf_route", [li])


def configure_checker_controls(deployment: HydraDeployment,
                               topology: Topology) -> None:
    """Control-plane configuration that makes all Table-1 checkers pass
    on healthy fabric transit traffic (what the paper's deployment does
    before measuring overhead)."""
    deployed = {c.name for c in deployment.compileds}
    spines = [n for n, s in topology.switches.items() if s.is_spine]
    leaves = [n for n, s in topology.switches.items() if s.is_leaf]

    if "multi_tenancy" in deployed:
        # One tenant everywhere: every port maps to tenant 0 (dict miss
        # yields 0 on both ends, consistent) — nothing to install.
        pass
    if "load_balance" in deployed:
        for leaf in leaves:
            ports = topology.ports_of(leaf)
            uplinks = ports[-2:]
            deployment.set_control("left_port", uplinks[0], switch=leaf)
            deployment.set_control("right_port", uplinks[1], switch=leaf)
            for port in uplinks:
                deployment.dict_put("is_uplink", port, True, switch=leaf)
        deployment.set_control("thresh", (1 << 31))  # report-free run
    if "stateful_firewall" in deployed:
        # Permit-all so the overhead run is verdict-neutral.
        deployment.dict_put_ranges(
            "allowed", [(0, 0xFFFFFFFF), (0, 0xFFFFFFFF)], True)
    if "vlan_isolation" in deployed:
        # Untagged traffic reads VLAN id 0; provision it everywhere.
        deployment.dict_put("vlan_configured", 0, True)
    if "egress_port_validity" in deployed:
        for switch in topology.switches:
            for port in topology.ports_of(switch):
                deployment.set_add("allowed_ports", port, switch=switch)
    if "routing_validity" in deployed:
        for name, spec in topology.switches.items():
            deployment.set_control("routing_validity:is_leaf", spec.is_leaf,
                                   switch=name)
            deployment.set_control("routing_validity:is_spine", spec.is_spine,
                                   switch=name)
    if "waypointing" in deployed:
        # Spines are the choke points; all measured traffic crosses one.
        for name, spec in topology.switches.items():
            deployment.set_control("is_waypoint", spec.is_spine, switch=name)
    if "service_chain" in deployed:
        deployment.set_control("chain_len", 0)
        deployment.set_control("chain_pos", 0)
    if "source_routing_validation" in deployed:
        for link in topology.links:
            a, b = link.a.node, link.b.node
            if a in topology.switches and b in topology.switches:
                ida = topology.switch_id(a)
                idb = topology.switch_id(b)
                deployment.dict_put("allowed_edge", (ida, idb), True)
                deployment.dict_put("allowed_edge", (idb, ida), True)


def run_rtt_experiment(checkers: Optional[List[str]], label: str,
                       config: Optional[Fig12Config] = None,
                       obs: Optional[Observability] = None) -> RttRun:
    """One arm of Figure 12: load + ping, returns the RTT series."""
    config = config or Fig12Config()
    network, _ = build_fabric(checkers, config, obs=obs)
    # Background load: h1<->h3 and h2<->h4, crossing the spines via ECMP.
    for i, (a, b) in enumerate((("h1", "h3"), ("h2", "h4"))):
        UdpLoadGenerator(network, a, b, config.load_bps_per_pair,
                         packet_len=config.load_packet_len,
                         seed=config.seed + i).schedule(config.duration_s)
    EchoResponder(network, "h3")
    pinger = Pinger(network, "h1", "h3", interval_s=config.ping_interval_s)
    pinger.schedule(config.duration_s)
    network.run()
    return RttRun(label=label, series=pinger.series(),
                  rtts_ms=pinger.rtts_ms,
                  packets_lost=network.packets_lost)


def run_fig12(config: Optional[Fig12Config] = None,
              checkers: Optional[List[str]] = None,
              workers: int = 1) -> Fig12Result:
    """Both arms + the t-test of Figure 12b.

    The two arms are independent simulations of a deterministic
    event-driven network, so ``workers > 1`` runs them in a two-process
    pool with bit-identical RTT series to the serial path — the
    simulator's clock is virtual, not wall time.
    """
    config = config or Fig12Config()
    arm_args = ((None, "Baseline", config),
                (checkers or ALL_CHECKERS, "All Checkers", config))
    if workers > 1:
        import multiprocessing

        with multiprocessing.get_context().Pool(processes=2) as pool:
            handles = [pool.apply_async(run_rtt_experiment, args)
                       for args in arm_args]
            baseline, with_checkers = [h.get() for h in handles]
    else:
        baseline, with_checkers = [run_rtt_experiment(*args)
                                   for args in arm_args]
    result = Fig12Result(baseline=baseline, with_checkers=with_checkers)
    result.t_test = welch_t_test(baseline.rtts_ms, with_checkers.rtts_ms)
    return result


# Backwards-compatible alias.
_install_fabric_routes = install_fabric_routes
