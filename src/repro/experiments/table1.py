"""Table 1 reproduction: lines of code, pipeline stages, and PHV usage
for every property, linked against the Aether ``fabric-upf`` baseline.

LoC metrics:

* **Indus LoC** — non-blank, non-comment lines of the property source;
* **generated P4 LoC** — the lines our pretty-printer emits for the
  checker's contribution, measured as linked-program LoC minus
  forwarding-only LoC (so parsers/boilerplate shared with the base
  program are not double-counted).

Resource metrics come from :mod:`repro.tofino` (container-packing PHV
model + dependency-depth stage model), anchored at the paper's measured
baseline (12 stages / 44.53% PHV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..aether.upf import upf_program
from ..compiler import compile_program, link
from ..net.topology import EDGE
from ..p4 import count_loc, render
from ..properties import (BASELINE_PHV_PCT, BASELINE_STAGES, PROPERTIES,
                          TABLE1_ORDER, indus_loc, load_checked)
from ..tofino import analyze_linked


@dataclass
class Table1Row:
    """One reproduced row of Table 1 next to the paper's numbers."""

    name: str
    description: str
    indus_loc: int
    p4_loc: int
    stages: int
    phv_pct: float
    paper_indus_loc: Optional[int]
    paper_p4_loc: Optional[int]
    paper_stages: Optional[int]
    paper_phv_pct: Optional[float]
    #: Resources of the dataflow-optimized checker (``optimize=True``
    #: rows only).  The optimizer is behaviorally identity — validated
    #: by the differential oracle — so these are pure resource deltas.
    opt_stages: Optional[int] = None
    opt_phv_pct: Optional[float] = None


def compute_row(name: str, optimize: bool = False) -> Table1Row:
    info = PROPERTIES[name]
    compiled = compile_program(load_checked(name), name=name)
    baseline = upf_program("fabric_upf")
    linked = link(baseline, compiled, role=EDGE)
    p4_loc = count_loc(render(linked)) - count_loc(render(baseline))
    resources = analyze_linked(name, linked, baseline)
    opt_stages = opt_phv_pct = None
    if optimize:
        optimized = compile_program(load_checked(name), name=name,
                                    optimize=True)
        opt_linked = link(upf_program("fabric_upf"), optimized, role=EDGE)
        opt_resources = analyze_linked(name, opt_linked, baseline)
        opt_stages = opt_resources.stages
        opt_phv_pct = opt_resources.phv_pct
    return Table1Row(
        name=name,
        description=info.description,
        indus_loc=indus_loc(name),
        p4_loc=p4_loc,
        stages=resources.stages,
        phv_pct=resources.phv_pct,
        paper_indus_loc=info.paper_indus_loc,
        paper_p4_loc=info.paper_p4_loc,
        paper_stages=info.paper_stages,
        paper_phv_pct=info.paper_phv_pct,
        opt_stages=opt_stages,
        opt_phv_pct=opt_phv_pct,
    )


def compute_table(names: Optional[List[str]] = None,
                  optimize: bool = False) -> List[Table1Row]:
    return [compute_row(name, optimize=optimize)
            for name in (names or TABLE1_ORDER)]


def format_table(rows: List[Table1Row]) -> str:
    """Render the table the way the paper's Table 1 reads."""
    lines = [
        "Table 1 — Hydra properties "
        "(ours vs paper; paper values in parentheses)",
        f"{'Property':28s} {'Indus LoC':>12s} {'P4 LoC':>12s} "
        f"{'Stages':>12s} {'PHV %':>16s}",
        f"{'Baseline (fabric-upf)':28s} {'-':>12s} {'-':>12s} "
        f"{BASELINE_STAGES:>6d} {'(12)':>5s} "
        f"{BASELINE_PHV_PCT:>9.2f} {'(44.53)':>8s}",
    ]
    optimized = any(row.opt_stages is not None for row in rows)
    if optimized:
        lines[1] += f" {'opt Δstage':>11s} {'opt ΔPHV %':>11s}"
    for row in rows:
        line = (
            f"{row.name:28s} "
            f"{row.indus_loc:>5d} ({row.paper_indus_loc or '-':>4}) "
            f"{row.p4_loc:>5d} ({row.paper_p4_loc or '-':>4}) "
            f"{row.stages:>6d} ({row.paper_stages or '-':>3}) "
            f"{row.phv_pct:>9.2f} ({row.paper_phv_pct or '-':>6})"
        )
        if row.opt_stages is not None:
            line += (f" {row.opt_stages - row.stages:>+11d}"
                     f" {row.opt_phv_pct - row.phv_pct:>+11.2f}")
        lines.append(line)
    return "\n".join(lines)
