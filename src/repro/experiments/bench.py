"""Engine benchmark: packets/sec for interp/fast/codegen, goodput parity.

Measures the raw ``Bmv2Switch.process`` forwarding rate of a single
linked switch (the same setup as ``benchmarks/test_throughput.py``'s
``test_switch_processing_rate``) under every execution engine — plus
the codegen engine's vectorized ``process_batch`` entry point — and the
campus-replay goodput under each engine as a parity check.  Results are
written as ``BENCH_throughput.json``; every write appends the run's
summary to the report's ``history`` list (keyed by commit + timestamp)
so the packets/sec trajectory across PRs survives each overwrite.

Entry points: ``python benchmarks/run_bench.py`` or
``python -m repro bench``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from datetime import datetime, timezone
from typing import Any, Dict, Optional, Sequence

from ..compiler import compile_program, standalone_program
from ..net.packet import ip, make_udp
from ..obs import MetricsRegistry, Observability
from ..p4.bmv2 import Bmv2Switch
from ..properties import load_source
from .throughput import run_replay

ENGINES = ("interp", "fast", "codegen")


def _build_switch(engine: str,
                  obs: Optional[Observability] = None,
                  optimize: bool = False) -> Bmv2Switch:
    compiled = compile_program(load_source("loops"), name="loops",
                               optimize=optimize)
    program = standalone_program(compiled)
    sw = Bmv2Switch(program, name="s1", engine=engine, obs=obs)
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
    return sw


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def bench_meta() -> Dict[str, Any]:
    """Provenance stamp: which code produced these numbers, when, where."""
    return {
        "commit": _git_commit(),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def metered_snapshot(packets: int = 2000) -> Dict[str, Any]:
    """A short metered run of the fast engine with a *live* registry:
    the metrics snapshot stamped into the benchmark report.  The timed
    measurement itself always runs with the null registry — this run is
    separate, so observability cost never leaks into the pps numbers."""
    registry = MetricsRegistry()
    sw = _build_switch("fast", obs=Observability(registry=registry))
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    for _ in range(packets):
        sw.process(packet, 1)
    dump = registry.to_dict()
    series = dump.get("table_lookups_total", {}).get("series", [])
    hits = sum(s["value"] for s in series
               if s["labels"].get("result") == "hit")
    total = sum(s["value"] for s in series)
    ns_series = dump.get("fastpath_ns_per_packet", {}).get("series", [])
    return {
        "packets": packets,
        "table_lookups_total": total,
        "table_hit_ratio": round(hits / total, 4) if total else None,
        "fastpath_ns_per_packet_mean":
            round(ns_series[0]["mean"], 1) if ns_series else None,
        "switch_packets_dropped_total": sum(
            s["value"] for s in
            dump.get("switch_packets_dropped_total", {}).get("series", [])),
    }


def measure_pps(engine: str, packets: int = 5000, warmup: int = 500,
                repeats: int = 3, optimize: bool = False) -> float:
    """Best-of-N packets/sec through one linked switch."""
    if packets < 1:
        raise ValueError("packets must be >= 1, got %d" % packets)
    sw = _build_switch(engine, optimize=optimize)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    for _ in range(warmup):
        sw.process(packet, 1)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(packets):
            sw.process(packet, 1)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, packets / elapsed)
    return best


def measure_batch_pps(engine: str = "codegen", packets: int = 5000,
                      warmup: int = 500, repeats: int = 3,
                      optimize: bool = False) -> float:
    """Best-of-N packets/sec through ``process_batch`` — one call per
    timing run, so per-packet Python call overhead is amortized."""
    if packets < 1:
        raise ValueError("packets must be >= 1, got %d" % packets)
    sw = _build_switch(engine, optimize=optimize)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    items = [(packet, 1)] * packets
    sw.process_batch([(packet, 1)] * warmup)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        sw.process_batch(items)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, packets / elapsed)
    return best


def _replay_goodput(engine: str) -> Dict[str, Any]:
    """One engine's campus-replay goodput entry (module-level so the
    worker-pool path can pickle it)."""
    r = run_replay(["loops"], engine, rate_pps=5000,
                   duration_s=0.05, engine=engine)
    return {"goodput_bps": round(r.goodput_bps, 1),
            "delivery_ratio": round(r.delivery_ratio, 4)}


def _history_entry(result: Dict[str, Any]) -> Dict[str, Any]:
    """The compact per-run record appended to the report's history."""
    entry: Dict[str, Any] = {
        "commit": result["meta"].get("commit"),
        "timestamp": result["meta"].get("timestamp"),
        "optimize": result.get("optimize", False),
        "engines": {name: stats["pps"]
                    for name, stats in result["engines"].items()},
        "speedups": dict(result.get("speedups", {})),
    }
    batch = result.get("codegen_batch")
    if batch:
        entry["codegen_batch_pps"] = batch["pps"]
    return entry


def load_history(out_path: str) -> list:
    """The history list of an existing report (empty when the file is
    missing, unreadable, or predates history tracking)."""
    try:
        with open(out_path) as handle:
            prior = json.load(handle)
    except (OSError, ValueError):
        return []
    history = prior.get("history", [])
    if not isinstance(history, list):
        return []
    if not history and "engines" in prior and "meta" in prior:
        # Pre-history report: fold its single run in so the first
        # history-aware write does not lose the recorded trajectory.
        try:
            history = [_history_entry(prior)]
        except (KeyError, TypeError):
            history = []
    return history


def run_bench(packets: int = 5000, replay: bool = True,
              out_path: Optional[str] = None,
              workers: int = 1, optimize: bool = False,
              engines: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """The full benchmark; optionally writes the JSON report.

    ``workers > 1`` offloads the *side* tasks — the replay parity check
    and the metered metrics snapshot — to a process pool while this
    process runs the timed pps loops undisturbed.  The timing itself is
    never parallelized: co-scheduling CPU-bound workers alongside a
    wall-clock measurement would distort the numbers the bench guard
    defends.  The replay and snapshot are deterministic-in-content, so
    the report is the same either way (timing fields aside).

    ``engines`` restricts which engines are timed (default all three).
    Writing to ``out_path`` appends this run to the report's
    ``history`` list (prior runs are carried over from the existing
    file), so overwriting the report never loses the pps trajectory.
    """
    engines = tuple(engines) if engines else ENGINES
    result: Dict[str, Any] = {"benchmark": "switch_processing_rate",
                              "program": "loops (linked standalone)",
                              "meta": bench_meta(),
                              # Timed runs use the default null registry:
                              # the pps numbers measure the unobserved
                              # hot path (what the bench guard defends).
                              "observability": "null registry (off)",
                              "workers": max(1, workers),
                              "optimize": optimize,
                              "engines": {}}
    pool = None
    snapshot_async = None
    replay_async: Dict[str, Any] = {}
    if workers > 1:
        import multiprocessing

        pool = multiprocessing.get_context().Pool(
            processes=min(workers, 1 + len(engines)))
        snapshot_async = pool.apply_async(metered_snapshot)
        if replay:
            replay_async = {engine: pool.apply_async(_replay_goodput,
                                                     (engine,))
                            for engine in engines}
    try:
        for engine in engines:
            pps = measure_pps(engine, packets=packets, optimize=optimize)
            result["engines"][engine] = {
                "pps": round(pps, 1),
                "us_per_packet": round(1e6 / pps, 2)}
        if "codegen" in engines:
            batch_pps = measure_batch_pps("codegen", packets=packets,
                                          optimize=optimize)
            result["codegen_batch"] = {
                "pps": round(batch_pps, 1),
                "us_per_packet": round(1e6 / batch_pps, 2)}
        if snapshot_async is not None:
            result["metrics_snapshot"] = snapshot_async.get()
        else:
            result["metrics_snapshot"] = metered_snapshot()
        interp_pps = result["engines"].get("interp", {}).get("pps")
        speedups: Dict[str, float] = {}
        if interp_pps:
            for engine in engines:
                if engine != "interp":
                    speedups[engine] = round(
                        result["engines"][engine]["pps"] / interp_pps, 2)
            if "codegen_batch" in result:
                speedups["codegen_batch"] = round(
                    result["codegen_batch"]["pps"] / interp_pps, 2)
        result["speedups"] = speedups
        if "fast" in speedups:
            # Backwards-compatible scalar older tooling reads.
            result["speedup"] = speedups["fast"]
        if replay:
            goodput: Dict[str, Any] = {}
            for engine in engines:
                if engine in replay_async:
                    goodput[engine] = replay_async[engine].get()
                else:
                    goodput[engine] = _replay_goodput(engine)
            values = {goodput[e]["goodput_bps"] for e in engines}
            goodput["parity"] = len(values) == 1
            result["replay_goodput"] = goodput
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    if out_path:
        history = load_history(out_path)
        history.append(_history_entry(result))
        result["history"] = history
        with open(out_path, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
    return result


def format_bench(result: Dict[str, Any]) -> str:
    lines = [f"engine benchmark — {result['program']}"]
    for engine, stats in result["engines"].items():
        lines.append(f"  {engine:13s} {stats['pps']:10.0f} pps  "
                     f"({stats['us_per_packet']:.1f} us/pkt)")
    batch = result.get("codegen_batch")
    if batch:
        lines.append(f"  codegen batch {batch['pps']:10.0f} pps  "
                     f"({batch['us_per_packet']:.1f} us/pkt)")
    for engine, ratio in result.get("speedups", {}).items():
        lines.append(f"  speedup {ratio:6.2f}x ({engine} vs interp)")
    goodput = result.get("replay_goodput")
    if goodput:
        for engine in result["engines"]:
            stats = goodput[engine]
            lines.append(
                f"  replay {engine:7s} goodput="
                f"{stats['goodput_bps'] / 1e6:8.1f} Mb/s "
                f"delivery={stats['delivery_ratio']:.3f}")
        lines.append("  goodput parity: "
                     + ("OK" if goodput["parity"] else "MISMATCH"))
    history = result.get("history")
    if history:
        lines.append(f"  history: {len(history)} recorded run(s)")
    return "\n".join(lines)
