"""Paper-rate traffic-plane benchmark (``python -m repro bench --net``).

Measures sustained fig12-style campus replay through the full simulated
fabric — host NIC FIFOs, four wire legs, three switch pipelines, FIFO
output ports — in both execution modes of :class:`repro.net.Network`:

* ``event``   — the historical event-per-packet scheduler path;
* ``batched`` — the batch hot loop (timing wheel + eager walks + flow
  fast-forwarding), the mode this benchmark exists to prove out at the
  paper's ~350K pps mirror rate (Figure 12/13 replay).

Both modes replay the *same* seeded trace; the report carries an
equivalence stamp (delivery counts, bytes, and final-arrival timestamp
must match exactly) alongside the throughput numbers, wall-clock phase
timings (``phase_seconds``), and the usual provenance metadata.
Results append to ``BENCH_net.json`` history like the switch-level
benchmark does for ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional

from ..obs import MetricsRegistry, Observability, profiled
from ..workloads.campus import CampusTraceGenerator
from .bench import bench_meta, load_history
from .fig12 import Fig12Config, build_fabric
from .throughput import ReplayFeed, ThroughputResult, run_replay

#: The paper's mirrored-campus replay rate (Figure 12/13): the batched
#: mode must sustain at least this on one machine.
NET_TARGET_PPS = 350_000.0

#: Default replay shape: a 40G fabric with low propagation delay keeps
#: per-packet transit shorter than the mean inter-arrival gap at the
#: offered rate, so the batched walks rarely need continuations — the
#: regime the paper's uncongested overhead experiment runs in.
DEFAULT_RATE_PPS = 400_000.0
DEFAULT_DURATION_S = 1.0


def _net_config(engine: str, batched: bool) -> Fig12Config:
    return Fig12Config(link_bandwidth_bps=40e9, link_latency_s=2e-8,
                       engine=engine, batched=batched)


def measure_replay(mode: str, rate_pps: float, duration_s: float,
                   seed: int = 5, engine: str = "codegen",
                   registry: Optional[MetricsRegistry] = None
                   ) -> Dict[str, Any]:
    """One arm: wall-clock one seeded replay in the given mode.

    Two profiled phases, reported separately in ``phase_seconds``:

    * *prepare* — build the fabric, synthesize + anonymize the campus
      trace, and materialize the emission list.  This is the paper's
      offline step (the mirrored capture is anonymized and written to
      a pcap before the experiment); tcpreplay never pays it at replay
      time, so neither does the timed region here.
    * *replay* — push the prepared trace through the simulated fabric.
      This is the traffic plane the benchmark exists to measure.

    The replay runs h1 -> h2: both hosts sit on leaf1, so traffic
    traverses exactly one ToR switch — the paper's Figure 12 setup
    mirrors the campus trace into the *single* switch under test, and
    the one-switch path is the faithful shape for its 350K pps rate.
    """
    batched = mode == "batched"
    config = _net_config(engine, batched)
    reg = registry if registry is not None else MetricsRegistry()
    with profiled(reg, f"prepare_{mode}"):
        network, _ = build_fabric(None, config)
        generator = CampusTraceGenerator(seed=seed, reuse_packets=True)
        hosts = network.topology.hosts
        feed = ReplayFeed(generator, src_ip=hosts["h1"].ipv4,
                          dst_ip=hosts["h2"].ipv4,
                          rate_pps=rate_pps, duration_s=duration_s)
        trace = list(feed.emissions())
    sink = network.host("h2")
    with profiled(reg, f"replay_{mode}"):
        start = time.perf_counter()
        network.attach_source("h1", iter(trace))
        network.run()
        elapsed = time.perf_counter() - start
    last_arrival = (sink.last_rx_time
                    if sink.last_rx_time is not None else duration_s)
    result = ThroughputResult(
        label=mode,
        offered_packets=feed.offered,
        delivered_packets=sink.rx_count,
        delivered_bytes=sink.rx_bytes,
        duration_s=max(last_arrival, duration_s),
    )
    return {
        "mode": mode,
        "engine": engine,
        "rate_pps": rate_pps,
        "duration_s": duration_s,
        "seed": seed,
        "offered_packets": result.offered_packets,
        "delivered_packets": result.delivered_packets,
        "delivered_bytes": result.delivered_bytes,
        "sim_duration_s": result.duration_s,
        "wall_s": round(elapsed, 6),
        "replay_pps": round(result.offered_packets / elapsed, 1)
        if elapsed > 0 else 0.0,
        "goodput_bps": round(result.goodput_bps, 1),
    }


def _equivalence(a: ThroughputResult, b: ThroughputResult) -> Dict[str, Any]:
    return {
        "delivered_packets_equal": a.delivered_packets == b.delivered_packets,
        "delivered_bytes_equal": a.delivered_bytes == b.delivered_bytes,
        "last_arrival_equal": a.duration_s == b.duration_s,
        "offered_packets_equal": a.offered_packets == b.offered_packets,
    }


def check_equivalence(rate_pps: float = 50_000.0, duration_s: float = 0.02,
                      seed: int = 5, engine: str = "codegen"
                      ) -> Dict[str, Any]:
    """Replay one short seeded slice in both modes and compare outputs
    field-for-field.  The full-rate arms are too slow to double-run in
    event mode, so the report's equivalence stamp comes from this."""
    arms = {}
    for mode in ("event", "batched"):
        arms[mode] = run_replay(None, mode, rate_pps=rate_pps,
                                duration_s=duration_s, seed=seed,
                                batched=(mode == "batched"),
                                config=_net_config(engine,
                                                   mode == "batched"))
    checks = _equivalence(arms["event"], arms["batched"])
    checks.update({
        "rate_pps": rate_pps,
        "duration_s": duration_s,
        "ok": all(v for k, v in checks.items() if k.endswith("_equal")),
    })
    return checks


def _net_history_entry(result: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "meta": result["meta"],
        "batched_pps": result["modes"]["batched"]["replay_pps"],
        "event_pps": result["modes"]["event"]["replay_pps"],
        "speedup": result["speedup"],
        "sustained": result["sustained"],
    }


def run_net_bench(rate_pps: float = DEFAULT_RATE_PPS,
                  duration_s: float = DEFAULT_DURATION_S,
                  seed: int = 5, engine: str = "codegen",
                  event_duration_s: Optional[float] = None,
                  out_path: Optional[str] = None) -> Dict[str, Any]:
    """The full net-plane benchmark; optionally writes ``BENCH_net.json``.

    The batched arm replays ``duration_s`` of simulated traffic at
    ``rate_pps``; the event arm replays a shorter slice (it is the
    slow path being replaced — pps extrapolates from a fraction of the
    trace) unless ``event_duration_s`` pins it.
    """
    registry = MetricsRegistry()
    batched = measure_replay("batched", rate_pps, duration_s, seed=seed,
                             engine=engine, registry=registry)
    event = measure_replay("event", rate_pps,
                           event_duration_s
                           if event_duration_s is not None
                           else min(duration_s, 0.05),
                           seed=seed, engine=engine, registry=registry)
    with profiled(registry, "equivalence"):
        equivalence = check_equivalence(seed=seed, engine=engine)
    phase_seconds = {
        series["labels"]["phase"]: round(series["sum"], 6)
        for series in registry.to_dict().get(
            "phase_seconds", {}).get("series", [])
    }
    result: Dict[str, Any] = {
        "benchmark": "net_replay",
        "meta": bench_meta(),
        "target_pps": NET_TARGET_PPS,
        "modes": {"batched": batched, "event": event},
        "speedup": round(batched["replay_pps"] / event["replay_pps"], 2)
        if event["replay_pps"] else None,
        "sustained": batched["replay_pps"] >= NET_TARGET_PPS,
        "equivalence": equivalence,
        "phase_seconds": phase_seconds,
    }
    if out_path:
        history = load_history(out_path)
        history.append(_net_history_entry(result))
        result["history"] = history
        with open(out_path, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
    return result


def format_net_bench(result: Dict[str, Any]) -> str:
    lines = ["net-plane replay benchmark (fig12-style fabric)"]
    for mode in ("batched", "event"):
        arm = result["modes"][mode]
        lines.append(
            f"  {mode:8s} {arm['replay_pps']:>12,.0f} pps   "
            f"({arm['offered_packets']} packets / {arm['wall_s']:.3f}s wall, "
            f"engine={arm['engine']})")
    if result.get("speedup") is not None:
        lines.append(f"  speedup   {result['speedup']:.2f}x")
    target = result["target_pps"]
    verdict = "SUSTAINED" if result["sustained"] else "below target"
    lines.append(f"  target    {target:,.0f} pps -> {verdict}")
    eq = result["equivalence"]
    lines.append(f"  equivalence (event vs batched): "
                 f"{'ok' if eq['ok'] else 'DIVERGED'}")
    return "\n".join(lines)
