"""Throughput microbenchmark (Section 6.2 text): replayed campus-style
traffic toward leaf1, delivered throughput compared with and without
Hydra — the paper found parity (~20 Gb/s in both configurations, limited
by the replay source rather than the switch).

In our substrate the replay drives the same leaf-spine fabric as
Figure 12.  Delivered goodput is measured at the sink hosts; the
checkers add only telemetry bytes inside the fabric (stripped before
delivery), so goodput parity is the expected result.

The replay is fully lazy: the campus trace is anonymized and
re-addressed one packet at a time through ``Network.attach_source``, so
paper-rate offered loads (350K+ pps) never materialize the whole trace
as pre-scheduled ``Host.send`` events.  Each campus flow maps to one
UDP template packet (stable source port per flow, sizes preserved),
which is what lets the batched network fast-forward repeat emissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..net.packet import Packet, make_udp
from ..workloads.anonymizer import PrefixPreservingAnonymizer
from ..workloads.campus import CampusTraceGenerator
from .fig12 import Fig12Config, build_fabric


@dataclass
class ThroughputResult:
    label: str
    offered_packets: int
    delivered_packets: int
    delivered_bytes: int
    duration_s: float

    @property
    def goodput_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.delivered_bytes * 8 / self.duration_s

    @property
    def delivery_ratio(self) -> float:
        if not self.offered_packets:
            return 0.0
        return self.delivered_packets / self.offered_packets


class ReplayFeed:
    """Lazily anonymize + re-address a campus trace onto the fabric.

    The paper's pipeline: tapped traffic passes a line-rate
    prefix-preserving anonymizer before replay.  We apply the same
    sanitization, then re-address onto our fabric endpoints, keeping
    packet sizes — the property that matters for throughput.  Each
    campus flow gets a stable source port (hashed onto 1000 ports, like
    the original replay's port cycling) and one shared template packet
    per (flow, size), counted as it is offered.
    """

    def __init__(self, generator: CampusTraceGenerator, src_ip: int,
                 dst_ip: int, rate_pps: float, duration_s: float):
        self._generator = generator
        self._anonymizer = PrefixPreservingAnonymizer()
        self._src_ip = src_ip
        self._dst_ip = dst_ip
        self._rate_pps = rate_pps
        self._duration_s = duration_s
        self._templates: dict = {}
        self._flow_ports: dict = {}
        self.offered = 0
        self.offered_bytes = 0

    def emissions(self) -> Iterator[Tuple[float, Packet]]:
        timed = self._generator.timed_packets(self._rate_pps,
                                              self._duration_s)
        templates = self._templates
        flow_ports = self._flow_ports
        anonymize = self._anonymizer.anonymize_ipv4
        for when, trace_packet in timed:
            flow_id = trace_packet.meta["flow_id"]
            sport = flow_ports.get(flow_id)
            if sport is None:
                # The ONTAS step: build the flow's prefix-preserving
                # address mapping once (the anonymizer memoizes it),
                # then re-address onto the fabric endpoints.
                anonymize(flow_id[0])
                anonymize(flow_id[1])
                sport = 20000 + len(flow_ports) % 1000
                flow_ports[flow_id] = sport
            # Templates dedup on wire content, not flow identity: the
            # port cycling folds the flow universe onto 1000 source
            # ports, so two flows sharing a port slot and size replay
            # byte-identical packets — one template serves both, which
            # bounds the template (and transit-record) population.
            key = (sport, trace_packet.payload_len)
            entry = templates.get(key)
            if entry is None:
                packet = make_udp(self._src_ip, self._dst_ip, sport, 5201,
                                  payload_len=trace_packet.payload_len)
                entry = (packet, packet.length)
                templates[key] = entry
            self.offered += 1
            self.offered_bytes += entry[1]
            yield when, entry[0]


def run_replay(checkers: Optional[List[str]], label: str,
               rate_pps: float = 20_000, duration_s: float = 0.1,
               seed: int = 5, engine: str = "fast",
               batched: bool = False,
               config: Optional[Fig12Config] = None) -> ThroughputResult:
    """Replay a synthetic campus trace from h1 toward h3 (cross-fabric).

    ``batched=True`` runs the same replay through the network's batch
    hot loop; delivery counts, bytes, and timestamps are identical to
    the event-per-packet path by construction.  ``config`` overrides
    the fabric parameters (bandwidth, latency, engine) wholesale.
    """
    if config is None:
        config = Fig12Config(link_bandwidth_bps=10e9, engine=engine,
                             batched=batched)
    network, _ = build_fabric(checkers, config)
    generator = CampusTraceGenerator(seed=seed, reuse_packets=True)
    feed = ReplayFeed(generator,
                      src_ip=network.topology.hosts["h1"].ipv4,
                      dst_ip=network.topology.hosts["h3"].ipv4,
                      rate_pps=rate_pps, duration_s=duration_s)
    network.attach_source("h1", feed.emissions())
    sink = network.host("h3")
    network.run()
    # The sink tracks the true last-delivery time and byte count itself,
    # so goodput stays honest even when rx callbacks consume packets
    # (``received`` would be empty and the old estimate fell back to
    # ``duration_s``, overstating goodput).
    last_arrival = (sink.last_rx_time
                    if sink.last_rx_time is not None else duration_s)
    return ThroughputResult(
        label=label,
        offered_packets=feed.offered,
        delivered_packets=sink.rx_count,
        delivered_bytes=sink.rx_bytes,
        duration_s=max(last_arrival, duration_s),
    )
