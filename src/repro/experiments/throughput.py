"""Throughput microbenchmark (Section 6.2 text): replayed campus-style
traffic toward leaf1, delivered throughput compared with and without
Hydra — the paper found parity (~20 Gb/s in both configurations, limited
by the replay source rather than the switch).

In our substrate the replay drives the same leaf-spine fabric as
Figure 12.  Delivered goodput is measured at the sink hosts; the
checkers add only telemetry bytes inside the fabric (stripped before
delivery), so goodput parity is the expected result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..net.packet import make_udp
from ..workloads.anonymizer import PrefixPreservingAnonymizer
from ..workloads.campus import CampusTraceGenerator
from .fig12 import Fig12Config, build_fabric


@dataclass
class ThroughputResult:
    label: str
    offered_packets: int
    delivered_packets: int
    delivered_bytes: int
    duration_s: float

    @property
    def goodput_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.delivered_bytes * 8 / self.duration_s

    @property
    def delivery_ratio(self) -> float:
        if not self.offered_packets:
            return 0.0
        return self.delivered_packets / self.offered_packets


def run_replay(checkers: Optional[List[str]], label: str,
               rate_pps: float = 20_000, duration_s: float = 0.1,
               seed: int = 5, engine: str = "fast") -> ThroughputResult:
    """Replay a synthetic campus trace from h1 toward h3 (cross-fabric)."""
    config = Fig12Config(link_bandwidth_bps=10e9, engine=engine)
    network, _ = build_fabric(checkers, config)
    generator = CampusTraceGenerator(seed=seed)
    # The paper's pipeline: tapped traffic passes a line-rate
    # prefix-preserving anonymizer before replay.  We apply the same
    # sanitization, then re-address onto our fabric endpoints, keeping
    # packet sizes — the property that matters for throughput.
    anonymizer = PrefixPreservingAnonymizer()
    src = network.topology.hosts["h1"].ipv4
    dst = network.topology.hosts["h3"].ipv4
    offered = 0
    offered_bytes = 0
    for when, trace_packet in generator.timed_packets(rate_pps, duration_s):
        sanitized = anonymizer.anonymize_packet(trace_packet)
        packet = make_udp(src, dst, 20000 + offered % 1000, 5201,
                          payload_len=sanitized.payload_len)
        network.host("h1").send(packet, delay=when)
        offered += 1
        offered_bytes += packet.length
    sink = network.host("h3")
    network.run()
    delivered_bytes = sum(p.length for _, p in sink.received)
    if not sink.received and sink.rx_count:
        # Callbacks may have consumed the packets; estimate from the
        # trace's actual mean offered packet length.
        mean_len = offered_bytes / offered if offered else 0.0
        delivered_bytes = round(sink.rx_count * mean_len)
    last_arrival = max((t for t, _ in sink.received), default=duration_s)
    return ThroughputResult(
        label=label,
        offered_packets=offered,
        delivered_packets=sink.rx_count,
        delivered_bytes=delivered_bytes,
        duration_s=max(last_arrival, duration_s),
    )
