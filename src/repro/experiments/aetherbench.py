"""Million-subscriber Aether soak benchmark (``repro aether`` /
``python -m repro bench --aether``).

Soaks the Section 5.2 Aether testbed at scale: bulk PFCP-style attach
up to the target session count, a churn phase (detach a deterministic
fraction, re-attach it), and a replay phase pushing uplink + downlink
traffic through the UPF with the application-filtering checker live.
The report records sessions, attach/s, p50/p99 per-attach latency,
replay pps, Hydra report count, peak RSS, the capacity model, and a
*flatness* probe: per-packet forwarding cost measured at a small
baseline session count and again at the full count — the O(1)
checker-state claim is that the two agree within 10%.

Sharding: UE indices partition round-robin over workers
(:func:`repro.parallel.shard.partition_seeds`); every per-session
decision (slice membership, churn, replay sampling, denied traffic) is
a pure function of the UE index, so the union of work — and therefore
every deterministic counter in the report — is identical for any
worker count.  Results append to ``BENCH_aether.json`` history like
the other benchmarks do.
"""

from __future__ import annotations

import json
import resource
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.packet import Packet
from ..obs import MetricsRegistry, profiled
from ..parallel.shard import partition_seeds
from .bench import bench_meta, load_history

#: The acceptance target: one million concurrent sessions with live
#: checkers, churn, and traffic.
AETHER_TARGET_SESSIONS = 1_000_000

#: Session count for the flatness baseline probe.
FLATNESS_BASELINE_SESSIONS = 10_000

#: Per-packet cost at the full session count must stay within this
#: factor of the baseline probe (the "flat from 10^4 to 10^6" claim).
FLATNESS_TOLERANCE = 1.10

_SLICES = 4
_UPLINK_DPORT = 80
_DENIED_DPORT = 9999


def _imsi(index: int) -> str:
    return f"imsi{index}"


def _slice_name(index: int, slices: int = _SLICES) -> str:
    return f"slice{index % slices}"


def _slice_rules(server_ip: int):
    """Two rules per slice: allow UDP/80 toward the edge server, deny
    everything else.  Patterns are identical across subscribers of a
    slice, so the whole slice shares two interned app ids."""
    from ..aether import ALLOW, DENY, FilterRule
    return [
        FilterRule(priority=20, ip_prefix=(server_ip, 32), proto=17,
                   l4_port=(_UPLINK_DPORT, _UPLINK_DPORT), action=ALLOW),
        FilterRule(priority=1, action=DENY),
    ]


def _build_testbed(sessions: int, engine: str, batched: bool,
                   slices: int = _SLICES):
    """A capacity-bounded testbed with ``slices`` provisioned slices."""
    from ..aether import AetherCapacity, AetherTestbed, SERVER_HOST
    tb = AetherTestbed(
        capacity=AetherCapacity(max_sessions=sessions,
                                rules_per_session=2),
        engine=engine, batched=batched)
    server_ip = tb.topology.hosts[SERVER_HOST].ipv4
    for s in range(slices):
        tb.provision_slice(f"slice{s}", _slice_rules(server_ip))
    return tb, server_ip


def _enroll(tb, indices: Sequence[int], slices: int = _SLICES) -> None:
    by_slice: Dict[str, List[str]] = {}
    for i in indices:
        by_slice.setdefault(_slice_name(i, slices), []).append(_imsi(i))
    for name, imsis in by_slice.items():
        tb.portal.add_members(name, imsis)


def _chunks(seq: Sequence[int], size: int):
    for start in range(0, len(seq), size):
        yield seq[start:start + size]


def _attach_batches(tb, indices: Sequence[int], batch_size: int,
                    samples: Optional[List[Tuple[int, float]]] = None
                    ) -> float:
    """Attach ``indices`` in batches; returns total wall seconds and
    optionally records per-batch ``(size, seconds)`` latency samples."""
    total = 0.0
    for batch in _chunks(indices, batch_size):
        start = time.perf_counter()
        tb.attach_many([(_imsi(i), i) for i in batch])
        elapsed = time.perf_counter() - start
        total += elapsed
        if samples is not None:
            samples.append((len(batch), elapsed))
    return total


def measure_packet_cost(tb, server_ip: int, indices: Sequence[int],
                        probe_ues: int = 256, packets: int = 2000,
                        repeats: int = 3) -> float:
    """Best-of-N microseconds per packet through the ingress leaf's
    pipeline (tables + checker), over GTP-U packets from a spread of
    attached UEs — the quantity the flatness claim is about."""
    stride = max(1, len(indices) // probe_ues)
    sample = list(indices)[::stride][:probe_ues]
    leaf1 = tb.deployment.switches["leaf1"]
    pkts = [tb.uplink_packet(_imsi(i), server_ip, _UPLINK_DPORT)
            for i in sample]
    for packet in pkts:
        leaf1.process(packet, 1)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for k in range(packets):
            leaf1.process(pkts[k % len(pkts)], 1)
        best = min(best, (time.perf_counter() - start) / packets)
    return best * 1e6


def _replay_trace(tb, server_ip: int, ues: Sequence[int],
                  downlink_ues: Sequence[int], denied_ues: Sequence[int],
                  repeats: int, pace_pps: float
                  ) -> Tuple[List[Tuple[float, Packet]],
                             List[Tuple[float, Packet]], int]:
    """Materialize the replay emissions: paced uplink (allowed +
    denied) from the cell and downlink from the edge server.  One
    template packet per (UE, kind) keeps the trace memory-bounded.
    Returns (uplink trace, downlink trace, expected deliveries)."""
    up = [tb.uplink_packet(_imsi(i), server_ip, _UPLINK_DPORT)
          for i in ues]
    down = [tb.downlink_packet(server_ip, _imsi(i), _UPLINK_DPORT)
            for i in downlink_ues]
    denied = [tb.uplink_packet(_imsi(i), server_ip, _DENIED_DPORT)
              for i in denied_ues]
    gap = 1.0 / pace_pps
    uplink: List[Tuple[float, Packet]] = []
    downlink: List[Tuple[float, Packet]] = []
    tick = 0
    for _ in range(repeats):
        for packet in up:
            uplink.append((tick * gap, packet))
            tick += 1
        for packet in down:
            downlink.append((tick * gap, packet))
            tick += 1
    for packet in denied:
        uplink.append((tick * gap, packet))
        tick += 1
    expected = repeats * (len(up) + len(down))
    return uplink, downlink, expected


def _soak_shard(payload: Tuple[Tuple[int, ...], Dict[str, Any]]
                ) -> Dict[str, Any]:
    """One worker's soak: its own testbed holding its share of the
    sessions, attach -> probe -> churn -> replay.  Module-level so the
    multiprocessing pool can pickle it."""
    from ..aether import CELL_HOST, SERVER_HOST
    indices, cfg = payload
    indices = list(indices)
    registry = MetricsRegistry()
    tb, server_ip = _build_testbed(len(indices), cfg["engine"],
                                   cfg["batched"], cfg["slices"])
    _enroll(tb, indices, cfg["slices"])

    samples: List[Tuple[int, float]] = []
    with profiled(registry, "attach"):
        attach_wall = _attach_batches(tb, indices, cfg["batch_size"],
                                      samples)

    us_per_packet = (measure_packet_cost(tb, server_ip, indices)
                     if cfg["probe"] else None)

    # Churn: every churn_every-th UE index detaches and re-attaches —
    # a pure function of the index, so the churned set is identical
    # for any sharding.
    churned = [i for i in indices if i % cfg["churn_every"] == 0]
    detach_wall = 0.0
    with profiled(registry, "churn"):
        for batch in _chunks(churned, cfg["batch_size"]):
            start = time.perf_counter()
            tb.detach_many([_imsi(i) for i in batch])
            detach_wall += time.perf_counter() - start
            _attach_batches(tb, batch, cfg["batch_size"])

    us_after_churn = (measure_packet_cost(tb, server_ip, indices)
                      if cfg["probe"] else None)

    # Replay: sampled UEs exchange paced uplink/downlink traffic
    # through the fabric with the checker live; a smaller sample sends
    # traffic the policy denies (classified, then dropped by the UPF).
    replay_ues = [i for i in indices if i % cfg["replay_every"] == 0]
    downlink_ues = [i for i in replay_ues
                    if i % (4 * cfg["replay_every"]) == 0]
    denied_ues = [i for i in replay_ues
                  if i % (8 * cfg["replay_every"]) == 0]
    uplink, downlink, expected = _replay_trace(
        tb, server_ip, replay_ues, downlink_ues, denied_ues,
        cfg["replay_repeats"], cfg["pace_pps"])
    offered = len(uplink) + len(downlink)
    cell = tb.network.host(CELL_HOST)
    server = tb.network.host(SERVER_HOST)
    rx_before = cell.rx_count + server.rx_count
    with profiled(registry, "replay"):
        start = time.perf_counter()
        tb.network.attach_source(CELL_HOST, iter(uplink))
        if downlink:
            tb.network.attach_source(SERVER_HOST, iter(downlink))
        tb.network.run()
        replay_wall = time.perf_counter() - start
    delivered = cell.rx_count + server.rx_count - rx_before

    return {
        "sessions": len(indices),
        "attached": len(tb.onos.clients),
        "attach_wall_s": attach_wall,
        "attach_samples": samples,
        "churned": len(churned),
        "detach_wall_s": detach_wall,
        "replay_offered": offered,
        "replay_delivered": delivered,
        "replay_expected": expected,
        "replay_wall_s": replay_wall,
        "reports": len(tb.reports),
        "us_per_packet": us_per_packet,
        "us_per_packet_after_churn": us_after_churn,
        "peak_rss_bytes": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss * 1024,
        "metrics": registry.to_dict(),
    }


def measure_baseline_cost(sessions: int = FLATNESS_BASELINE_SESSIONS,
                          engine: str = "codegen",
                          batch_size: int = 10_000) -> float:
    """Per-packet cost at the small baseline session count, against
    which the full-scale probe is compared."""
    tb, server_ip = _build_testbed(sessions, engine, batched=False)
    indices = list(range(1, sessions + 1))
    _enroll(tb, indices)
    _attach_batches(tb, indices, batch_size)
    return measure_packet_cost(tb, server_ip, indices)


def _weighted_percentile(samples: Sequence[Tuple[float, int]],
                         q: float) -> float:
    """Percentile of a weighted sample set: ``(value, weight)`` pairs,
    weight = how many observations share the value."""
    ordered = sorted(samples)
    total = sum(weight for _, weight in ordered)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0
    for value, weight in ordered:
        seen += weight
        if seen >= rank:
            return value
    return ordered[-1][0]


def run_soak(sessions: int = AETHER_TARGET_SESSIONS,
             engine: str = "codegen", batched: bool = True,
             workers: int = 1, batch_size: int = 10_000,
             churn_every: int = 10, replay_ues: int = 2_000,
             replay_repeats: int = 25, pace_pps: float = 100_000.0,
             slices: int = _SLICES, flatness: bool = True,
             baseline_sessions: int = FLATNESS_BASELINE_SESSIONS,
             out_path: Optional[str] = None,
             registry: Optional[MetricsRegistry] = None
             ) -> Dict[str, Any]:
    """The full soak; optionally writes ``BENCH_aether.json``.

    ``workers > 1`` shards the UE index range round-robin across a
    process pool — each worker soaks its own testbed; deterministic
    counters (attaches, churn, offered/delivered, reports) are
    identical for any worker count.  Wall-clock rates use the slowest
    shard, which is what a concurrent deployment would observe.

    ``registry`` (a live :class:`~repro.obs.MetricsRegistry`) receives
    the merged worker metrics — including ``phase_seconds{phase=
    "attach"|"churn"|"replay"}`` — which is how ``repro metrics
    aether`` surfaces the soak's phase timings.
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cfg = {
        "engine": engine,
        "batched": batched,
        "batch_size": batch_size,
        "churn_every": max(2, churn_every),
        "replay_every": max(1, sessions // max(1, replay_ues)),
        "replay_repeats": replay_repeats,
        "pace_pps": pace_pps,
        "slices": slices,
        "probe": flatness,
    }
    shards = partition_seeds(1, sessions, workers)
    payloads = [(shard.seeds, cfg) for shard in shards]
    if len(payloads) == 1:
        shard_results = [_soak_shard(payloads[0])]
    else:
        import multiprocessing

        with multiprocessing.get_context().Pool(
                processes=len(payloads)) as pool:
            shard_results = pool.map(_soak_shard, payloads)

    if registry is None:
        registry = MetricsRegistry()
    for shard in shard_results:
        registry.merge(shard["metrics"])

    attach_total = sum(s["sessions"] for s in shard_results)
    attach_wall = max(s["attach_wall_s"] for s in shard_results)
    churned = sum(s["churned"] for s in shard_results)
    detach_wall = max(s["detach_wall_s"] for s in shard_results)
    offered = sum(s["replay_offered"] for s in shard_results)
    delivered = sum(s["replay_delivered"] for s in shard_results)
    expected = sum(s["replay_expected"] for s in shard_results)
    replay_wall = max(s["replay_wall_s"] for s in shard_results)
    latency = [(seconds / size * 1e6, size)
               for s in shard_results
               for size, seconds in s["attach_samples"] if size]

    result: Dict[str, Any] = {
        "benchmark": "aether_soak",
        "meta": bench_meta(),
        "engine": engine,
        "batched": batched,
        "workers": workers,
        "capacity": _build_capacity_describe(sessions, workers),
        "sessions": {
            "target": sessions,
            "attached_peak": sum(s["attached"] for s in shard_results),
        },
        "attach": {
            "total": attach_total,
            "wall_s": round(attach_wall, 3),
            "per_s": round(attach_total / attach_wall, 1)
            if attach_wall else 0.0,
            "p50_us": round(_weighted_percentile(latency, 0.50), 2),
            "p99_us": round(_weighted_percentile(latency, 0.99), 2),
            "batch_size": batch_size,
        },
        "churn": {
            "detached": churned,
            "reattached": churned,
            "detach_per_s": round(churned / detach_wall, 1)
            if detach_wall else 0.0,
        },
        "replay": {
            "offered": offered,
            "delivered": delivered,
            "expected": expected,
            "pps": round(offered / replay_wall, 1) if replay_wall
            else 0.0,
            "wall_s": round(replay_wall, 3),
            "reports": sum(s["reports"] for s in shard_results),
        },
        "peak_rss_bytes": max(s["peak_rss_bytes"]
                              for s in shard_results),
        "phase_seconds": {
            series["labels"]["phase"]: round(series["sum"], 6)
            for series in registry.to_dict().get(
                "phase_seconds", {}).get("series", [])
        },
        "deterministic": {
            "attach_total": attach_total,
            "churned": churned,
            "replay_offered": offered,
            "replay_delivered": delivered,
            "replay_expected": expected,
            "reports": sum(s["reports"] for s in shard_results),
        },
    }
    if flatness:
        baseline = measure_baseline_cost(
            min(baseline_sessions, sessions), engine=engine,
            batch_size=batch_size)
        full = max(s["us_per_packet"] for s in shard_results)
        after_churn = max(s["us_per_packet_after_churn"]
                          for s in shard_results)
        ratio = full / baseline if baseline else None
        result["flatness"] = {
            "baseline_sessions": min(baseline_sessions, sessions),
            "us_per_packet_baseline": round(baseline, 2),
            "us_per_packet_full": round(full, 2),
            "us_per_packet_after_churn": round(after_churn, 2),
            "ratio": round(ratio, 4) if ratio is not None else None,
            "flat": ratio is not None and ratio <= FLATNESS_TOLERANCE,
            "tolerance": FLATNESS_TOLERANCE,
        }
    if out_path:
        history = load_history(out_path)
        history.append(_aether_history_entry(result))
        result["history"] = history
        with open(out_path, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
    return result


def _build_capacity_describe(sessions: int, workers: int
                             ) -> Dict[str, Any]:
    from ..aether import AetherCapacity
    per_shard = -(-sessions // workers)
    described = AetherCapacity(max_sessions=per_shard,
                               rules_per_session=2).describe()
    described["total_sessions"] = sessions
    described["shards"] = workers
    return described


def _aether_history_entry(result: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "meta": result["meta"],
        "sessions": result["sessions"]["target"],
        "workers": result["workers"],
        "attach_per_s": result["attach"]["per_s"],
        "attach_p99_us": result["attach"]["p99_us"],
        "replay_pps": result["replay"]["pps"],
        "reports": result["replay"]["reports"],
        "peak_rss_bytes": result["peak_rss_bytes"],
        "flat": result.get("flatness", {}).get("flat"),
    }


def format_aether_bench(result: Dict[str, Any]) -> str:
    lines = [f"aether soak — {result['sessions']['target']:,} sessions "
             f"(engine={result['engine']}, workers={result['workers']})"]
    attach = result["attach"]
    lines.append(
        f"  attach  {attach['total']:>12,} total  "
        f"{attach['per_s']:>10,.0f}/s   "
        f"p50={attach['p50_us']:.1f}us p99={attach['p99_us']:.1f}us")
    churn = result["churn"]
    lines.append(f"  churn   {churn['detached']:>12,} detach+reattach  "
                 f"{churn['detach_per_s']:>10,.0f} detach/s")
    replay = result["replay"]
    lines.append(
        f"  replay  {replay['offered']:>12,} offered  "
        f"{replay['pps']:>10,.0f} pps   "
        f"delivered={replay['delivered']:,} reports={replay['reports']}")
    flat = result.get("flatness")
    if flat:
        verdict = "FLAT" if flat["flat"] else "NOT FLAT"
        lines.append(
            f"  per-pkt {flat['us_per_packet_baseline']:.1f}us @"
            f"{flat['baseline_sessions']:,} -> "
            f"{flat['us_per_packet_full']:.1f}us @full "
            f"(x{flat['ratio']:.3f}) {verdict}")
    lines.append(f"  peak RSS {result['peak_rss_bytes'] / 2**20:,.0f} MiB")
    phases = result.get("phase_seconds")
    if phases:
        rendered = "  ".join(f"{name}={seconds:.2f}s"
                             for name, seconds in sorted(phases.items()))
        lines.append(f"  phases  {rendered}")
    history = result.get("history")
    if history:
        lines.append(f"  history: {len(history)} recorded run(s)")
    return "\n".join(lines)
