"""Hydra: Effective Runtime Network Verification (SIGCOMM 2023) —
a complete Python reproduction.

Subpackages:

* :mod:`repro.indus`      — the Indus DSL (lexer, parser, type checker,
  reference interpreter).
* :mod:`repro.compiler`   — Indus-to-P4 code generation and linking.
* :mod:`repro.p4`         — P4 IR, behavioral model (bmv2 stand-in),
  pretty-printer, forwarding programs.
* :mod:`repro.net`        — packets, topologies, event-driven simulator.
* :mod:`repro.runtime`    — checker deployment and report collection.
* :mod:`repro.properties` — the Table-1 checker library.
* :mod:`repro.aether`     — the Aether substrate (UPF, ONOS, portal,
  mobile core) and the Section-5.2 case study.
* :mod:`repro.ltl`        — LTLf toolchain for Theorem 3.1.
* :mod:`repro.tofino`     — pipeline resource model (stages, PHV).
* :mod:`repro.workloads`  — campus traces, anonymizer, load/ping.
* :mod:`repro.experiments`— table/figure reproduction harnesses.

The stable public surface is :mod:`repro.api` — six verbs with
uniform keyword-only ``engine=`` / ``obs=`` / ``seed=`` / ``workers=``
arguments::

    import repro

    compiled = repro.compile_indus("loops", optimize=True)
    diagnostics = repro.lint("loops")             # dataflow lint
    result = repro.run_scenario(seed=7)           # dual-engine oracle
    summary = repro.api.difftest(seed=0, iters=200, workers=4)

(The campaign verb is reached as ``repro.api.difftest`` — the top-level
name ``repro.difftest`` is the subpackage of the same name.)

Quickstart for the lower-level layers::

    from repro.indus import Monitor, HopContext

    monitor = Monitor.from_source('''
        tele bit<8>[4] path;
        { }
        { path.push(switch_id); }
        { if (switch_id in path) { reject; } }
    ''')
"""

__version__ = "1.0.0"

from . import (aether, api, compiler, experiments, indus, ltl, net, p4,
               properties, runtime, tofino, workloads)
from .api import bench, compile_indus, deploy, lint, run_scenario
from .indus import Monitor, HopContext, check, parse
from .compiler import compile_program, link, standalone_program
from .runtime import HydraDeployment

__all__ = [
    "HopContext", "HydraDeployment", "Monitor", "aether", "api", "bench",
    "check", "compile_indus", "compile_program", "compiler", "deploy",
    "experiments", "indus", "link", "lint", "ltl", "net", "p4", "parse",
    "properties", "run_scenario", "runtime", "standalone_program",
    "tofino", "workloads", "__version__",
]
