"""Packet Header Vector (PHV) allocation model.

Tofino-1 exposes 4096 bits of normal PHV per pipeline (64 8-bit, 96
16-bit and 64 32-bit containers).  Every header field and metadata field
live in the program must be placed in containers; small fields can share
a container.

The model packs a program's fields into containers with a greedy
first-fit-decreasing allocator and reports the container bits consumed.
For Table 1 we report *deltas* against the forwarding-only program,
anchored at the paper's measured baseline of 44.53% — see
:mod:`repro.tofino.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..p4 import ir

# Tofino-1 normal PHV: container inventory (width -> count).
CONTAINER_INVENTORY: Dict[int, int] = {8: 64, 16: 96, 32: 64}
TOTAL_PHV_BITS = sum(width * count
                     for width, count in CONTAINER_INVENTORY.items())  # 4096


@dataclass
class PhvAllocation:
    """Result of packing a program's fields into PHV containers."""

    containers_used: Dict[int, int] = field(default_factory=dict)
    field_bits: int = 0

    @property
    def container_bits(self) -> int:
        return sum(width * count
                   for width, count in self.containers_used.items())

    @property
    def utilization_pct(self) -> float:
        return 100.0 * self.container_bits / TOTAL_PHV_BITS


def program_fields(program: ir.P4Program) -> List[Tuple[str, int]]:
    """Every PHV-resident field of a program: header binds + metadata +
    the intrinsic/standard metadata a v1model-style program always carries."""
    fields: List[Tuple[str, int]] = []
    for bind, htype in program.bind_types().items():
        for fdef in htype.fields:
            fields.append((f"hdr.{bind}.{fdef.name}", fdef.width))
    for name, width in program.metadata:
        fields.append((f"meta.{name}", width))
    # Standard metadata (ports, packet length, drop, queue metadata).
    fields.extend([
        ("standard_metadata.ingress_port", 9),
        ("standard_metadata.egress_spec", 9),
        ("standard_metadata.egress_port", 9),
        ("standard_metadata.packet_length", 32),
    ])
    return fields


def allocate(fields: List[Tuple[str, int]]) -> PhvAllocation:
    """Pack fields into containers (first-fit decreasing).

    Fields wider than 32 bits are split into 32-bit chunks, which is how
    compilers slice MAC addresses and the like.  Fields from the same
    header may share containers; we do not model the cross-header packing
    constraints, which makes the model slightly optimistic — consistently
    so for baseline and checkers, which is what the delta needs.
    """
    chunks: List[int] = []
    for _, width in fields:
        while width > 32:
            chunks.append(32)
            width -= 32
        if width:
            chunks.append(width)
    chunks.sort(reverse=True)
    # Open containers: list of (size, free_bits).
    open_containers: List[List[int]] = []
    used: Dict[int, int] = {8: 0, 16: 0, 32: 0}
    for chunk in chunks:
        placed = False
        for container in open_containers:
            if container[1] >= chunk:
                container[1] -= chunk
                placed = True
                break
        if placed:
            continue
        size = 8 if chunk <= 8 else 16 if chunk <= 16 else 32
        if used[size] >= CONTAINER_INVENTORY[size]:
            # Fall back to the next-larger class when one is exhausted.
            for bigger in (16, 32):
                if bigger >= size and used[bigger] < CONTAINER_INVENTORY[bigger]:
                    size = bigger
                    break
        used[size] += 1
        open_containers.append([size, size - chunk])
    return PhvAllocation(
        containers_used={k: v for k, v in used.items() if v},
        field_bits=sum(chunks),
    )


def phv_bits(program: ir.P4Program) -> int:
    """Container bits a program occupies under the allocation model."""
    return allocate(program_fields(program)).container_bits
