"""Tofino resource reporting for Table 1.

The paper measures each checker linked against the Aether ``fabric-upf``
profile on real Tofino hardware: 12 stages and 44.53% PHV for the
baseline.  Our substrate is a behavioral model, so absolute resource
numbers are not comparable; instead this module *anchors* at the paper's
baseline and applies model-computed deltas:

* **PHV** — ``44.53% + (phv_bits(linked) - phv_bits(baseline)) / 4096``,
  where ``phv_bits`` comes from the container-packing model;
* **stages** — ``max(12, checker dependency depth)``: the checker's
  chains run in parallel with the forwarding program (they touch
  disjoint fields), so they add stages only if deeper than the baseline.

This reproduces the claims that matter: checkers do not increase the
stage count, and PHV overhead is modest and ordered by telemetry volume.
(The two 11-stage rows in the paper's table — where linking apparently
*reduced* stages — are an artifact of the vendor compiler's allocator
that an anchored model cannot reproduce; we report 12 and flag them in
EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..p4 import ir
from .phv import TOTAL_PHV_BITS, phv_bits
from .stages import dependency_depth, pipeline_depth

PAPER_BASELINE_STAGES = 12
PAPER_BASELINE_PHV_PCT = 44.53


@dataclass
class ResourceReport:
    """Modeled Tofino resource usage for one linked program."""

    name: str
    stages: int
    phv_pct: float
    phv_delta_bits: int
    checker_depth: int

    def __str__(self) -> str:
        return (f"{self.name}: {self.stages} stages, "
                f"{self.phv_pct:.2f}% PHV (+{self.phv_delta_bits} bits, "
                f"checker depth {self.checker_depth})")


def baseline_report(name: str = "baseline") -> ResourceReport:
    return ResourceReport(name=name, stages=PAPER_BASELINE_STAGES,
                          phv_pct=PAPER_BASELINE_PHV_PCT,
                          phv_delta_bits=0, checker_depth=0)


def analyze_linked(name: str, linked: ir.P4Program,
                   forwarding: ir.P4Program,
                   baseline_stages: int = PAPER_BASELINE_STAGES,
                   baseline_phv_pct: float = PAPER_BASELINE_PHV_PCT
                   ) -> ResourceReport:
    """Resource report for ``linked`` (= forwarding + checker) relative
    to the forwarding-only program, anchored at the paper's baseline."""
    delta_bits = max(0, phv_bits(linked) - phv_bits(forwarding))
    phv_pct = baseline_phv_pct + 100.0 * delta_bits / TOTAL_PHV_BITS
    checker_depth = _checker_depth(linked, forwarding)
    stages = max(baseline_stages, checker_depth)
    return ResourceReport(name=name, stages=stages, phv_pct=phv_pct,
                          phv_delta_bits=delta_bits,
                          checker_depth=checker_depth)


def _checker_depth(linked: ir.P4Program,
                   forwarding: ir.P4Program) -> int:
    """Dependency depth attributable to the checker.

    The checker fragments execute in parallel with forwarding (disjoint
    fields), so their depth is the linked pipeline depth minus whatever
    the forwarding program itself already chains *only when the linked
    depth exceeds forwarding depth through checker statements*.  We
    simply measure the linked program's depth: if it equals the
    forwarding program's, the checker fit entirely in parallel.
    """
    linked_depth = pipeline_depth(linked)
    fwd_depth = pipeline_depth(forwarding)
    if linked_depth <= fwd_depth:
        return 0
    return linked_depth


__all__ = [
    "PAPER_BASELINE_PHV_PCT", "PAPER_BASELINE_STAGES", "ResourceReport",
    "analyze_linked", "baseline_report", "dependency_depth",
    "pipeline_depth",
]
