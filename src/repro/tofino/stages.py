"""Pipeline stage allocation model.

A Tofino pipeline executes match-action stages in sequence; two
operations can share a stage only if neither depends on the other's
results.  This module computes the *dependency depth* of a P4 IR
program: the longest chain of read-after-write / write-after-write /
table-application dependencies, which lower-bounds the number of stages
the program needs.

The headline claim of Table 1 — Hydra checkers run in parallel alongside
the forwarding program and do not increase the stage count — falls out
of this analysis: the checker chains are shallow (well under the
baseline's 12 stages) and touch disjoint fields, so the combined depth
equals the baseline depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..p4 import ir


@dataclass
class _Op:
    """One scheduled operation: its reads, writes, and whether it needs a
    match-action stage (tables/registers do; pure PHV moves are modeled
    as ALU ops that also consume a stage slot in a chain)."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)


def _expr_reads(expr: ir.P4Expr) -> Set[str]:
    reads: Set[str] = set()
    for node in ir.walk_exprs(expr):
        if isinstance(node, ir.FieldRef):
            reads.add(node.path)
        elif isinstance(node, ir.ValidRef):
            reads.add(f"hdr.{node.header}.$valid")
    return reads


def _action_ops(program: ir.P4Program, name: str,
                extra_reads: Set[str]) -> Tuple[Set[str], Set[str]]:
    """Aggregate read/write sets of an action body (params excluded)."""
    action = program.actions.get(name)
    reads: Set[str] = set()
    writes: Set[str] = set()
    if action is None:
        return reads, writes
    for stmt in ir.walk_stmts(action.body):
        if isinstance(stmt, ir.AssignStmt):
            writes.add(stmt.dest)
            reads |= {r for r in _expr_reads(stmt.value)
                      if not r.startswith("param.")}
        elif isinstance(stmt, ir.IfStmt):
            reads |= _expr_reads(stmt.cond)
        elif isinstance(stmt, ir.MarkToDrop):
            writes.add("standard_metadata.$drop")
    reads |= extra_reads
    return reads, writes


def _linearize(program: ir.P4Program, stmts: List[ir.P4Stmt],
               control_reads: Set[str]) -> List[_Op]:
    """Flatten a statement body into ops with control-dependency reads."""
    ops: List[_Op] = []
    for stmt in stmts:
        if isinstance(stmt, ir.AssignStmt):
            ops.append(_Op(reads=_expr_reads(stmt.value) | control_reads,
                           writes={stmt.dest}))
        elif isinstance(stmt, ir.IfStmt):
            cond_reads = _expr_reads(stmt.cond) | control_reads
            ops.extend(_linearize(program, stmt.then_body, cond_reads))
            ops.extend(_linearize(program, stmt.else_body, cond_reads))
        elif isinstance(stmt, ir.ApplyTable):
            table = program.tables.get(stmt.table)
            key_reads = {k.path for k in table.keys} if table else set()
            reads: Set[str] = set(key_reads) | control_reads
            writes: Set[str] = set()
            action_names = list(table.actions) if table else []
            if table and table.default_action:
                action_names.append(table.default_action[0])
            for aname in action_names:
                a_reads, a_writes = _action_ops(program, aname, set())
                reads |= a_reads
                writes |= a_writes
            hit_flag = f"table.{stmt.table}.$hit"
            writes.add(hit_flag)
            ops.append(_Op(reads=reads, writes=writes))
            branch_reads = control_reads | {hit_flag}
            ops.extend(_linearize(program, stmt.hit_body, branch_reads))
            ops.extend(_linearize(program, stmt.miss_body, branch_reads))
        elif isinstance(stmt, ir.RegisterRead):
            ops.append(_Op(reads=_expr_reads(stmt.index) | control_reads
                           | {f"reg.{stmt.register}"},
                           writes={stmt.dest}))
        elif isinstance(stmt, ir.RegisterWrite):
            ops.append(_Op(reads=(_expr_reads(stmt.index)
                                  | _expr_reads(stmt.value) | control_reads),
                           writes={f"reg.{stmt.register}"}))
        elif isinstance(stmt, ir.Digest):
            reads: Set[str] = set(control_reads)
            for expr in stmt.fields:
                reads |= _expr_reads(expr)
            ops.append(_Op(reads=reads, writes={"$digest"}))
        elif isinstance(stmt, (ir.SetValid, ir.SetInvalid)):
            ops.append(_Op(reads=set(control_reads),
                           writes={f"hdr.{stmt.header}.$valid"}))
        elif isinstance(stmt, ir.MarkToDrop):
            ops.append(_Op(reads=set(control_reads),
                           writes={"standard_metadata.$drop"}))
        elif isinstance(stmt, ir.PopSourceRoute):
            touched = {f"hdr.srcRoute{i}.$all" for i in range(8)}
            ops.append(_Op(reads=touched | control_reads, writes=touched))
        elif isinstance(stmt, ir.ExternCall):
            ops.append(_Op(reads=set(control_reads), writes={"$extern"}))
    return ops


def dependency_depth(program: ir.P4Program,
                     stmts: List[ir.P4Stmt]) -> int:
    """Longest RAW/WAW dependency chain through ``stmts``, in stages."""
    ops = _linearize(program, stmts, set())
    depths: List[int] = []
    for i, op in enumerate(ops):
        depth = 1
        for j in range(i):
            prev = ops[j]
            raw = prev.writes & op.reads
            waw = prev.writes & op.writes
            if raw or waw:
                depth = max(depth, depths[j] + 1)
        depths.append(depth)
    return max(depths, default=0)


def pipeline_depth(program: ir.P4Program) -> int:
    """Stage lower bound for a program: ingress and egress run in the
    two halves of the same physical stages, so the pipeline needs
    max(ingress depth, egress depth) stages."""
    return max(dependency_depth(program, program.ingress),
               dependency_depth(program, program.egress))
