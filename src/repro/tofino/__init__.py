"""Tofino pipeline resource model: PHV container packing and stage
dependency analysis, anchored at the paper's measured baseline."""

from .phv import (CONTAINER_INVENTORY, PhvAllocation, TOTAL_PHV_BITS,
                  allocate, phv_bits, program_fields)
from .report import (PAPER_BASELINE_PHV_PCT, PAPER_BASELINE_STAGES,
                     ResourceReport, analyze_linked, baseline_report)
from .stages import dependency_depth, pipeline_depth

__all__ = [
    "CONTAINER_INVENTORY", "PAPER_BASELINE_PHV_PCT",
    "PAPER_BASELINE_STAGES", "PhvAllocation", "ResourceReport",
    "TOTAL_PHV_BITS", "allocate", "analyze_linked", "baseline_report",
    "dependency_depth", "phv_bits", "pipeline_depth", "program_fields",
]
