"""Linking: merge compiled Indus checkers with a forwarding P4 program.

Per Section 4.2 of the paper: the init block goes at the beginning of the
ingress pipeline on first-hop switches, the telemetry block into the
egress pipeline on every switch, and the checker block at the end of the
egress pipeline on last-hop switches.  Edge switches run all three
blocks; non-edge (core) switches run only the telemetry block.

Multiple checkers can be linked into one program (the "all checkers"
configuration of Figure 12).  Each checker owns a telemetry header with
its own EtherType; on the wire the headers chain:

    ethernet(ET_1) / hydra_1(next=ET_2) / ... / hydra_n(next=orig) / ...

Injection at the first hop therefore runs the checkers' init fragments
in *reverse* order (each saves the current EtherType into its header and
claims the Ethernet EtherType), while stripping at the last hop runs in
*forward* order (each restores the EtherType it saved).
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Union

from ..indus.errors import CompileError
from ..net.topology import CORE, EDGE
from ..p4 import ir
from .codegen import CompiledChecker
from .layout import HYDRA_HEADER_NAME, NEXT_ETH_TYPE_FIELD


# Checking placement (Section 4.3): the paper's implementation checks
# at the last hop; per-hop checking — proposed as future work — runs the
# checker block at every hop so violations are caught (and packets
# dropped) inside the network core rather than at the edge.
LAST_HOP = "last_hop"
PER_HOP = "per_hop"


def link(forwarding: ir.P4Program,
         compiled: Union[CompiledChecker, Sequence[CompiledChecker]],
         role: str = EDGE, check_mode: str = LAST_HOP) -> ir.P4Program:
    """Link one or more compiled checkers into ``forwarding`` for a
    switch of ``role``.  Returns a new program; inputs are unmodified.

    ``check_mode`` selects last-hop checking (the paper's default) or
    per-hop checking (its Section 4.3 extension).  Under per-hop
    checking every switch evaluates the checker block after its
    telemetry block and enforces ``reject`` immediately; the telemetry
    header is still stripped only at the last hop.  Note per-hop
    checking changes the observable semantics of programs whose checker
    reads last-hop-only state (e.g. the egress port of the final
    switch); it is sound for checkers over accumulated telemetry, like
    the loop and valley-free properties.
    """
    if role not in (EDGE, CORE):
        raise CompileError(f"unknown switch role {role!r}")
    if check_mode not in (LAST_HOP, PER_HOP):
        raise CompileError(f"unknown check mode {check_mode!r}")
    compileds: List[CompiledChecker] = (
        [compiled] if isinstance(compiled, CompiledChecker) else list(compiled)
    )
    if not compileds:
        raise CompileError("link requires at least one compiled checker")
    _check_distinct(compileds)

    program = _clone(forwarding)
    names = "+".join(c.name for c in compileds)
    program.name = f"{forwarding.name}_{names}"

    _redirect_ethertype_writes(program, compileds)
    for c in compileds:
        _merge_decls(program, c)
    # Parser: extend innermost-first so each outer header's dispatch
    # covers the inner headers' EtherTypes.
    for c in reversed(compileds):
        _extend_parser(program, c)

    if role == EDGE:
        ingress_fragments: List[ir.P4Stmt] = []
        for c in compileds:
            ingress_fragments.extend(copy.deepcopy(c.ingress_prologue))
        # Injection in reverse order builds the header chain correctly.
        for c in reversed(compileds):
            ingress_fragments.extend(copy.deepcopy(c.init_stmts))
        program.ingress = ingress_fragments + program.ingress

        egress_fragments: List[ir.P4Stmt] = []
        for c in compileds:
            egress_fragments.extend(copy.deepcopy(c.egress_prologue))
        for c in compileds:
            egress_fragments.append(ir.IfStmt(
                cond=ir.ValidRef(c.hydra_name),
                then_body=copy.deepcopy(c.tele_stmts),
            ))
        if check_mode == PER_HOP:
            for c in compileds:
                egress_fragments.append(ir.IfStmt(
                    cond=ir.ValidRef(c.hydra_name),
                    then_body=(copy.deepcopy(c.check_stmts)
                               + _enforce_reject(c)),
                ))
        # Last-hop checks (skipped per checker under per-hop mode), then
        # strips in forward (outer-to-inner) order so each restores the
        # EtherType it saved.
        for c in compileds:
            is_last = ir.BinExpr("==", ir.FieldRef(f"meta.{c.last_hop_meta}"),
                                 ir.Const(1, 1))
            body: List[ir.P4Stmt] = []
            if check_mode == LAST_HOP:
                body.extend(copy.deepcopy(c.check_stmts))
            body.extend(copy.deepcopy(c.strip_stmts))
            egress_fragments.append(ir.IfStmt(
                cond=ir.BinExpr("&&", ir.ValidRef(c.hydra_name), is_last),
                then_body=body,
            ))
        program.egress = program.egress + egress_fragments
    else:
        # Core switches: telemetry only (plus the prologue that loads the
        # scalar control values telemetry may read), and — under per-hop
        # checking — the checker block with immediate enforcement.
        egress_fragments = []
        for c in compileds:
            prologue = [s for s in c.egress_prologue
                        if not (isinstance(s, ir.ApplyTable)
                                and s.table == c.inject_table)]
            egress_fragments.extend(copy.deepcopy(prologue))
        for c in compileds:
            egress_fragments.append(ir.IfStmt(
                cond=ir.ValidRef(c.hydra_name),
                then_body=copy.deepcopy(c.tele_stmts),
            ))
        if check_mode == PER_HOP:
            for c in compileds:
                egress_fragments.append(ir.IfStmt(
                    cond=ir.ValidRef(c.hydra_name),
                    then_body=(copy.deepcopy(c.check_stmts)
                               + _enforce_reject(c)),
                ))
        program.egress = program.egress + egress_fragments
    return program


def _enforce_reject(compiled: CompiledChecker) -> List[ir.P4Stmt]:
    """Drop immediately when the reject flag is set (per-hop mode)."""
    return [ir.IfStmt(
        cond=ir.BinExpr("==", ir.FieldRef(f"meta.{compiled.reject_meta}"),
                        ir.Const(1, 1)),
        then_body=[ir.MarkToDrop()],
    )]


def _check_distinct(compileds: List[CompiledChecker]) -> None:
    namespaces = [c.namespace for c in compileds]
    eth_types = [c.eth_type for c in compileds]
    if len(compileds) > 1:
        if len(set(namespaces)) != len(namespaces):
            raise CompileError(
                "multi-checker linking requires each checker to be "
                "compiled with a distinct namespace"
            )
        if len(set(eth_types)) != len(eth_types):
            raise CompileError(
                "multi-checker linking requires each checker to be "
                "compiled with a distinct telemetry EtherType"
            )


def _clone(program: ir.P4Program) -> ir.P4Program:
    return ir.P4Program(
        name=program.name,
        parser=copy.deepcopy(program.parser),
        metadata=list(program.metadata),
        registers=list(program.registers),
        actions=dict(program.actions),
        tables=copy.deepcopy(program.tables),
        ingress=copy.deepcopy(program.ingress),
        egress=copy.deepcopy(program.egress),
        emit_order=list(program.emit_order),
    )


def _redirect_ethertype_writes(program: ir.P4Program,
                               compileds: List[CompiledChecker]) -> None:
    """Keep the telemetry linkage intact when forwarding rewrites EtherType.

    While telemetry headers are on the packet, ``hdr.ethernet.eth_type``
    holds the outermost telemetry EtherType and the original value lives
    in the *innermost* header's ``next_eth_type`` (restored at strip
    time).  A forwarding program that rewrites the EtherType — e.g.
    source routing restoring IPv4 after the last pop — must write
    through to that field whenever telemetry is present.  The linker
    applies this rewrite mechanically, preserving source-level
    independence between forwarding and checking code.
    """
    ether = "hdr.ethernet.eth_type"
    innermost = compileds[-1]
    next_path = f"hdr.{innermost.hydra_name}.{NEXT_ETH_TYPE_FIELD}"

    def fix_body(body: List[ir.P4Stmt]) -> List[ir.P4Stmt]:
        out: List[ir.P4Stmt] = []
        for stmt in body:
            if isinstance(stmt, ir.AssignStmt) and stmt.dest == ether:
                out.append(ir.IfStmt(
                    cond=ir.ValidRef(innermost.hydra_name),
                    then_body=[ir.AssignStmt(next_path, stmt.value)],
                    else_body=[stmt],
                ))
            elif isinstance(stmt, ir.IfStmt):
                out.append(ir.IfStmt(stmt.cond, fix_body(stmt.then_body),
                                     fix_body(stmt.else_body)))
            elif isinstance(stmt, ir.ApplyTable):
                out.append(ir.ApplyTable(stmt.table, fix_body(stmt.hit_body),
                                         fix_body(stmt.miss_body)))
            else:
                out.append(stmt)
        return out

    program.ingress = fix_body(program.ingress)
    program.egress = fix_body(program.egress)
    for name, action in list(program.actions.items()):
        fixed = fix_body(action.body)
        program.actions[name] = ir.Action(action.name, list(action.params),
                                          fixed)


def _merge_decls(program: ir.P4Program, compiled: CompiledChecker) -> None:
    existing_meta = {name for name, _ in program.metadata}
    for name, width in compiled.metadata:
        if name in existing_meta:
            raise CompileError(
                f"metadata field {name!r} collides with the forwarding program"
            )
        program.metadata.append((name, width))
    existing_regs = {reg.name for reg in program.registers}
    for reg in compiled.registers:
        if reg.name in existing_regs:
            raise CompileError(f"register {reg.name!r} collides")
        program.registers.append(reg)
    for name, action in compiled.actions.items():
        if name in program.actions:
            raise CompileError(f"action {name!r} collides")
        program.actions[name] = copy.deepcopy(action)
    for name, table in compiled.tables.items():
        if name in program.tables:
            raise CompileError(f"table {name!r} collides")
        program.tables[name] = copy.deepcopy(table)


def _extend_parser(program: ir.P4Program, compiled: CompiledChecker) -> None:
    """Teach the parser to extract this telemetry header after Ethernet."""
    parser = program.parser
    ether_state: Optional[ir.ParserState] = None
    for state in parser.states:
        for extract in state.extracts:
            if isinstance(extract, ir.Extract) and extract.bind == "ethernet":
                ether_state = state
                break
        if ether_state is not None:
            break
    if ether_state is None:
        raise CompileError(
            "forwarding program has no Ethernet parser state to extend"
        )
    parse_state_name = f"{compiled.meta_prefix}parse_{compiled.hydra_name}"
    # The hydra state re-dispatches on the preserved EtherType using the
    # same transitions the Ethernet state currently has (which, when
    # extending innermost-first, already include inner telemetry headers).
    hydra_transitions: List[ir.Transition] = []
    for tr in ether_state.transitions:
        if tr.field_path is None:
            hydra_transitions.append(ir.Transition(tr.next_state))
        else:
            hydra_transitions.append(ir.Transition(
                tr.next_state,
                field_path=f"hdr.{compiled.hydra_name}.{NEXT_ETH_TYPE_FIELD}",
                value=tr.value,
            ))
    hydra_state = ir.ParserState(
        name=parse_state_name,
        extracts=[ir.Extract(compiled.hydra_name, compiled.hydra_header)],
        transitions=hydra_transitions,
    )
    ether_state.transitions.insert(0, ir.Transition(
        parse_state_name,
        field_path="hdr.ethernet.eth_type",
        value=compiled.eth_type,
    ))
    parser.states.append(hydra_state)
    if "ethernet" in program.emit_order:
        index = program.emit_order.index("ethernet")
        program.emit_order.insert(index + 1, compiled.hydra_name)
    else:
        program.emit_order.insert(0, compiled.hydra_name)


def standalone_program(compiled: Union[CompiledChecker,
                                       Sequence[CompiledChecker]],
                       name: Optional[str] = None) -> ir.P4Program:
    """Wrap compiled checker(s) into a minimal port-forwarding program.

    Used for unit-testing checker semantics in isolation and for the
    generated-LoC measurements of Table 1.
    """
    from ..p4.programs import l2_port_forwarding

    base = l2_port_forwarding(name or "standalone")
    return link(base, compiled, role=EDGE)
