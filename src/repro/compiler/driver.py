"""The compiler driver: per-switch code generation from a topology file.

Mirrors the paper's compiler interface (Section 4.1): given an Indus
program and a topology classifying each switch as edge or non-edge, it
"generates switch-specific code for each switch in the topology".  The
driver links the compiled checker with a forwarding program per switch
role and can write the resulting P4 sources plus a deployment manifest
(edge-port entries to install, control tables, report layout) to a
directory.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional, Union

from ..net.topology import Topology
from ..p4 import ir, render
from .codegen import CompiledChecker
from .linker import LAST_HOP, link

ForwardingFactory = Callable[[str], ir.P4Program]

FORWARDING_PROFILES: Dict[str, Callable[[], ForwardingFactory]] = {}


def _register_profiles() -> None:
    """Lazy registry of named forwarding profiles for the CLI."""
    if FORWARDING_PROFILES:
        return
    from ..aether.upf import upf_program
    from ..p4.programs import (ecmp_fabric, ipv4_lpm_forwarding,
                               l2_port_forwarding, source_routing,
                               vlan_l2_forwarding)

    FORWARDING_PROFILES.update({
        "l2": lambda: (lambda name: l2_port_forwarding(f"l2_{name}")),
        "ipv4": lambda: (lambda name: ipv4_lpm_forwarding(f"ipv4_{name}")),
        "srcroute": lambda: (lambda name: source_routing(f"sr_{name}")),
        "fabric": lambda: (lambda name: ecmp_fabric(f"fabric_{name}")),
        "vlan": lambda: (lambda name: vlan_l2_forwarding(f"vlan_{name}")),
        "upf": lambda: (lambda name: upf_program(f"upf_{name}")),
    })


def forwarding_factory(profile: str) -> ForwardingFactory:
    """Resolve a named forwarding profile to a per-switch program factory."""
    _register_profiles()
    if profile not in FORWARDING_PROFILES:
        raise ValueError(
            f"unknown forwarding profile {profile!r}; "
            f"available: {', '.join(sorted(FORWARDING_PROFILES))}"
        )
    return FORWARDING_PROFILES[profile]()


def generate_switch_programs(
        compiled: CompiledChecker, topology: Topology,
        forwarding: Union[str, ForwardingFactory] = "l2",
        check_mode: str = LAST_HOP) -> Dict[str, ir.P4Program]:
    """Link the checker for every switch in the topology.

    Returns switch name -> linked program, with each switch's role
    (edge/core) selecting which blocks it runs.
    """
    factory = (forwarding_factory(forwarding)
               if isinstance(forwarding, str) else forwarding)
    programs: Dict[str, ir.P4Program] = {}
    for name, spec in topology.switches.items():
        programs[name] = link(factory(name), compiled, role=spec.role,
                              check_mode=check_mode)
    return programs


def deployment_manifest(compiled: CompiledChecker,
                        topology: Topology) -> Dict:
    """The control-plane wiring a deployment needs, as plain data."""
    return {
        "checker": compiled.name,
        "telemetry_header": {
            "name": compiled.hydra_name,
            "eth_type": compiled.eth_type,
            "bits": compiled.hydra_header.width_bits,
            "fields": [
                {"name": f.name, "width": f.width}
                for f in compiled.hydra_header.fields
            ],
        },
        "edge_entries": {
            name: {
                "inject_table": compiled.inject_table,
                "strip_table": compiled.strip_table,
                "ports": list(spec.edge_ports),
            }
            for name, spec in topology.switches.items()
            if spec.role == "edge"
        },
        "control_tables": dict(compiled.control_tables),
        "report_digest": compiled.report_digest,
        "report_sites": {
            site_id: {"block": site.block,
                      "payload_widths": list(site.field_widths)}
            for site_id, site in compiled.report_sites.items()
        },
    }


def write_deployment(compiled: CompiledChecker, topology: Topology,
                     out_dir: str,
                     forwarding: Union[str, ForwardingFactory] = "l2",
                     check_mode: str = LAST_HOP) -> Dict[str, str]:
    """Write per-switch P4 sources + a manifest to ``out_dir``.

    Returns switch name -> written file path.
    """
    os.makedirs(out_dir, exist_ok=True)
    programs = generate_switch_programs(compiled, topology, forwarding,
                                        check_mode)
    written: Dict[str, str] = {}
    for name, program in programs.items():
        path = os.path.join(out_dir, f"{name}.p4")
        with open(path, "w") as handle:
            handle.write(render(program))
        written[name] = path
    manifest_path = os.path.join(out_dir, "deployment.json")
    with open(manifest_path, "w") as handle:
        json.dump(deployment_manifest(compiled, topology), handle, indent=2)
        handle.write("\n")
    written["__manifest__"] = manifest_path
    return written
