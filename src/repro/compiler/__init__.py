"""The Indus compiler: code generation to P4 IR and linking with
forwarding programs."""

from .codegen import (CompiledChecker, DEFAULT_BINDINGS, FIRST_HOP_META,
                      INJECT_TABLE, IndusCompiler, LAST_HOP_META, META_PREFIX,
                      REJECT_META, REPORT_DIGEST, ReportSite, STRIP_TABLE,
                      SWITCH_ID_TABLE, compile_program)
from .layout import (HOP_COUNT_FIELD, HYDRA_HEADER_NAME, HydraLayout,
                     NEXT_ETH_TYPE_FIELD, TeleArray, TeleScalar, build_layout)
from .linker import link, standalone_program

__all__ = [
    "CompiledChecker", "DEFAULT_BINDINGS", "FIRST_HOP_META",
    "HOP_COUNT_FIELD", "HYDRA_HEADER_NAME", 
    "HydraLayout", "INJECT_TABLE", "IndusCompiler", "LAST_HOP_META",
    "META_PREFIX", "NEXT_ETH_TYPE_FIELD", "REJECT_META", "REPORT_DIGEST",
    "ReportSite", "STRIP_TABLE", "SWITCH_ID_TABLE", "TeleArray",
    "TeleScalar", "build_layout", "compile_program", "link",
    "standalone_program",
]
