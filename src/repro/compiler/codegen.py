"""Code generation: Indus programs to P4 IR.

Implements the translation strategies of Section 4.1:

* ``header`` variables — resolved through their ``@`` annotation or a
  binding map supplied at compile time (the forwarding program's names);
* ``tele`` variables — fields of the generated Hydra telemetry header;
* ``sensor`` variables — P4 registers, read/written via scratch metadata;
* ``control`` variables — match-action tables.  Scalars get a table whose
  default action loads the value at pipeline start; dictionary (and set)
  lookups get a fresh table placed immediately before the statement that
  contains the lookup;
* lists and loops — arrays are unrolled into per-slot fields (the header
  stack view) and ``for`` loops into guarded straight-line code; the
  ``in`` operator expands to a validity-guarded comparison chain.

Every generated artifact (telemetry header, metadata fields, tables,
actions, digests) is namespaced per checker, so multiple compiled
checkers can be linked into the same forwarding program — the "all
checkers enabled" configuration of the paper's Figure 12.  Each checker
in a multi-checker deployment gets its own telemetry header and
EtherType; the headers chain via their ``next_eth_type`` fields.

The output is a :class:`CompiledChecker` whose statement blocks the
linker places into a forwarding program (init at the top of ingress on
first-hop switches, telemetry in egress everywhere, checker at the end
of egress on last-hop switches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..indus import ast
from ..indus.errors import CompileError, SourceSpan
from ..indus.interp import _eval_const
from ..indus.parser import parse
from ..indus.typechecker import CheckedProgram, check
from ..indus.types import (ArrayType, BitType, BoolType, DictType, SetType,
                           TupleType, Type)
from ..net.packet import ETH_TYPE_HYDRA
from ..p4 import ir
from .layout import (HOP_COUNT_FIELD, HydraLayout, NEXT_ETH_TYPE_FIELD,
                     build_layout, scalar_width)

# Backwards-compatible names for the default (un-namespaced) checker.
META_PREFIX = "ih_"
FIRST_HOP_META = META_PREFIX + "first_hop"
LAST_HOP_META = META_PREFIX + "last_hop"
REJECT_META = META_PREFIX + "reject"
SWITCH_ID_META = META_PREFIX + "switch_id"
INJECT_TABLE = "ih_inject_tbl"
STRIP_TABLE = "ih_strip_tbl"
SWITCH_ID_TABLE = "ih_switch_id_tbl"
REPORT_DIGEST = "ih_report"

# Header variables without an explicit annotation fall back to these
# bindings (names the paper's examples use), which any forwarding
# program written against our substrate satisfies.
DEFAULT_BINDINGS: Dict[str, str] = {
    "in_port": "standard_metadata.ingress_port",
    "ingress_port": "standard_metadata.ingress_port",
    "eg_port": "standard_metadata.egress_port",
    "egress_port": "standard_metadata.egress_port",
    "ipv4_src": "hdr.ipv4.src_addr",
    "ipv4_dst": "hdr.ipv4.dst_addr",
    "ipv4_proto": "hdr.ipv4.protocol",
    "ipv4_ttl": "hdr.ipv4.ttl",
    "vlan_id": "hdr.vlan.vid",
    "udp_sport": "hdr.udp.src_port",
    "udp_dport": "hdr.udp.dst_port",
    "tcp_sport": "hdr.tcp.src_port",
    "tcp_dport": "hdr.tcp.dst_port",
}

# Annotations of the form "<bind>_is_valid" read header validity.
VALID_SUFFIX = "_is_valid"


def _tag_expr(expr: ir.P4Expr, span: SourceSpan) -> ir.P4Expr:
    """Stamp provenance onto a lowered expression (frozen dataclass, so
    the write reaches around immutability).  Only fills in unknown spans:
    sub-expressions tagged during their own translation keep the more
    precise location."""
    if span.line and not expr.span.line:
        object.__setattr__(expr, "span", span)
    return expr


def _tag_stmt(stmt: ir.P4Stmt, span: SourceSpan) -> ir.P4Stmt:
    """Stamp provenance onto a lowered statement and its nested bodies.
    Statements already tagged (from a deeper translation) are left
    alone, so the innermost Indus statement wins."""
    if not span.line:
        return stmt
    if not stmt.span.line:
        stmt.span = span
    if isinstance(stmt, ir.IfStmt):
        for inner in stmt.then_body:
            _tag_stmt(inner, span)
        for inner in stmt.else_body:
            _tag_stmt(inner, span)
    elif isinstance(stmt, ir.ApplyTable):
        for inner in stmt.hit_body:
            _tag_stmt(inner, span)
        for inner in stmt.miss_body:
            _tag_stmt(inner, span)
    return stmt


@dataclass
class ReportSite:
    """One report statement in the source: its digest layout."""

    site_id: int
    block: str
    field_widths: List[int] = field(default_factory=list)
    has_payload: bool = False


@dataclass
class CompiledChecker:
    """The compiler's output for one Indus program.

    All generated names derive from ``namespace`` (empty for a single
    checker), so several checkers can coexist in one linked program.
    """

    name: str
    checked: CheckedProgram
    layout: HydraLayout
    namespace: str = ""
    eth_type: int = ETH_TYPE_HYDRA
    metadata: List[Tuple[str, int]] = field(default_factory=list)
    registers: List[ir.RegisterDef] = field(default_factory=list)
    actions: Dict[str, ir.Action] = field(default_factory=dict)
    tables: Dict[str, ir.Table] = field(default_factory=dict)
    # Pipeline fragments, in placement order.
    ingress_prologue: List[ir.P4Stmt] = field(default_factory=list)
    init_stmts: List[ir.P4Stmt] = field(default_factory=list)
    egress_prologue: List[ir.P4Stmt] = field(default_factory=list)
    tele_stmts: List[ir.P4Stmt] = field(default_factory=list)
    check_stmts: List[ir.P4Stmt] = field(default_factory=list)
    strip_stmts: List[ir.P4Stmt] = field(default_factory=list)
    # Control-variable routing for the deployment runtime:
    #   indus name -> generated table names (a dict/set may have several
    #   lookup-site tables; scalars have one per pipeline).
    control_tables: Dict[str, List[str]] = field(default_factory=dict)
    control_value_widths: Dict[str, List[int]] = field(default_factory=dict)
    report_sites: Dict[int, ReportSite] = field(default_factory=dict)

    # -- derived names -------------------------------------------------------

    @property
    def meta_prefix(self) -> str:
        return f"ih_{self.namespace}_" if self.namespace else "ih_"

    @property
    def hydra_name(self) -> str:
        return self.layout.header.name

    @property
    def first_hop_meta(self) -> str:
        return self.meta_prefix + "first_hop"

    @property
    def last_hop_meta(self) -> str:
        return self.meta_prefix + "last_hop"

    @property
    def reject_meta(self) -> str:
        return self.meta_prefix + "reject"

    @property
    def switch_id_meta(self) -> str:
        return self.meta_prefix + "switch_id"

    @property
    def inject_table(self) -> str:
        return self.meta_prefix + "inject_tbl"

    @property
    def strip_table(self) -> str:
        return self.meta_prefix + "strip_tbl"

    @property
    def switch_id_table(self) -> str:
        return self.meta_prefix + "switch_id_tbl"

    @property
    def report_digest(self) -> str:
        return self.meta_prefix + "report"

    @property
    def mark_first_action(self) -> str:
        return self.meta_prefix + "mark_first_hop"

    @property
    def mark_last_action(self) -> str:
        return self.meta_prefix + "mark_last_hop"

    @property
    def set_switch_id_action(self) -> str:
        return self.meta_prefix + "set_switch_id"

    @property
    def hydra_header(self):
        return self.layout.header

    def generated_table_names(self) -> List[str]:
        return list(self.tables)

    def dict_hit_action(self, control_name: str, table_name: str) -> str:
        site = table_name.rsplit("tbl", 1)[-1]
        return f"{self.meta_prefix}{control_name}_set{site}"

    def set_hit_action(self, control_name: str, table_name: str) -> str:
        site = table_name.rsplit("tbl", 1)[-1]
        return f"{self.meta_prefix}{control_name}_hit{site}"

    def scalar_load_action(self, control_name: str, table_name: str) -> str:
        pipe = table_name.rsplit("_", 1)[-1]
        return f"{self.meta_prefix}load_{control_name}_{pipe}"


class IndusCompiler:
    """Translate one checked Indus program into a :class:`CompiledChecker`."""

    def __init__(self, checked: CheckedProgram, name: str = "checker",
                 bindings: Optional[Dict[str, str]] = None,
                 namespace: str = "", eth_type: int = ETH_TYPE_HYDRA):
        self.checked = checked
        self.program = checked.program
        self.name = name
        self.bindings = dict(DEFAULT_BINDINGS)
        self.bindings.update(bindings or {})
        header_name = f"hydra_{namespace}" if namespace else "hydra"
        self.layout = build_layout(checked, header_name=header_name)
        self.out = CompiledChecker(name=name, checked=checked,
                                   layout=self.layout, namespace=namespace,
                                   eth_type=eth_type)
        self.p = self.out.meta_prefix  # prefix for all generated names
        self._meta_fields: Dict[str, int] = {}
        self._loop_env: Dict[str, ir.P4Expr] = {}
        self._site_counter = 0
        self._report_counter = 0
        self._current_block = ""
        # Statement buffer the expression translator appends preludes to.
        self._pending: List[ir.P4Stmt] = []

    # ==================================================================
    # Entry point
    # ==================================================================

    def compile(self) -> CompiledChecker:
        self._declare_core_metadata()
        self._declare_sensors()
        self._declare_scalar_controls()
        self._build_hop_tables()

        self._current_block = "init"
        # Both the header injection and the translated init block run
        # only on the packet's first hop into the network.
        init_body = self._inject_body() + \
            self._translate_body(self.program.init_block)
        self.out.init_stmts = [ir.IfStmt(
            cond=ir.BinExpr("==", ir.FieldRef(f"meta.{self.out.first_hop_meta}"),
                            ir.Const(1, 1)),
            then_body=init_body,
        )]
        self._current_block = "telemetry"
        tele = self._translate_body(self.program.tele_block)
        if self.layout.uses_hop_count:
            hop = f"hdr.{self.out.hydra_name}.{HOP_COUNT_FIELD}"
            tele.insert(0, ir.AssignStmt(
                hop, ir.BinExpr("+", ir.FieldRef(hop), ir.Const(1, 8), 8)))
        self.out.tele_stmts = tele
        self._current_block = "checker"
        self.out.check_stmts = self._translate_body(self.program.check_block)
        self.out.strip_stmts = self._strip_stmts()

        self.out.metadata = list(self._meta_fields.items())
        return self.out

    # ==================================================================
    # Declarations
    # ==================================================================

    def _meta(self, name: str, width: int) -> str:
        """Allocate (or reuse) a metadata scratch field; returns its path."""
        existing = self._meta_fields.get(name)
        if existing is not None and existing != width:
            raise CompileError(
                f"metadata field {name!r} redeclared with width {width} "
                f"(was {existing})"
            )
        self._meta_fields[name] = width
        return f"meta.{name}"

    def _declare_core_metadata(self) -> None:
        self._meta(self.out.first_hop_meta, 1)
        self._meta(self.out.last_hop_meta, 1)
        self._meta(self.out.reject_meta, 1)
        if "switch_id" in self.checked.used_builtins:
            self._meta(self.out.switch_id_meta, 32)

    def _declare_sensors(self) -> None:
        for decl in self.program.decls_of_kind(ast.VarKind.SENSOR):
            if isinstance(decl.ty, (BitType, BoolType)):
                width = scalar_width(decl.ty)
                self.out.registers.append(
                    ir.RegisterDef(f"{self.p}reg_{decl.name}", width, 1)
                )
                self._meta(f"{self.p}sens_{decl.name}", width)
            elif isinstance(decl.ty, ArrayType) and \
                    isinstance(decl.ty.element, (BitType, BoolType)):
                # Sensor arrays: one register bank for the slots plus a
                # one-cell register holding the push cursor.
                elem_width = scalar_width(decl.ty.element)
                self.out.registers.append(
                    ir.RegisterDef(f"{self.p}reg_{decl.name}", elem_width,
                                   decl.ty.capacity)
                )
                self.out.registers.append(
                    ir.RegisterDef(f"{self.p}reg_{decl.name}_cnt", 8, 1)
                )
            else:
                raise CompileError(
                    f"sensor {decl.name!r}: only scalars and arrays of "
                    "scalars map to registers",
                    decl.span,
                )

    def _sensor_array_decl(self, name: str):
        """The declaration of a sensor array, or None."""
        decl = self.program.decl(name)
        if decl is not None and decl.kind is ast.VarKind.SENSOR and \
                isinstance(decl.ty, ArrayType):
            return decl
        return None

    def _sensor_count_read(self, name: str) -> ir.P4Expr:
        """Read a sensor array's cursor into fresh scratch metadata."""
        self._site_counter += 1
        scratch = self._meta(f"{self.p}scnt_{name}_{self._site_counter}", 8)
        self._pending.append(ir.RegisterRead(
            scratch, f"{self.p}reg_{name}_cnt", ir.Const(0, 32)))
        return ir.FieldRef(scratch)

    def _declare_scalar_controls(self) -> None:
        """Scalar control variables: one value-loading table per pipeline.

        Per the paper, a non-dictionary control variable is initialized by
        the default action of a table executed at the start of the
        pipeline.  The value lands in metadata, so both ingress and egress
        blocks need their own loader table.
        """
        for decl in self.program.decls_of_kind(ast.VarKind.CONTROL):
            if isinstance(decl.ty, (DictType, SetType)):
                self.out.control_tables.setdefault(decl.name, [])
                continue
            width = scalar_width(decl.ty)
            meta_path = self._meta(f"{self.p}ctrlval_{decl.name}", width)
            tables = []
            for pipe in ("ig", "eg"):
                action = ir.Action(
                    name=f"{self.p}load_{decl.name}_{pipe}",
                    params=[("value", width)],
                    body=[ir.AssignStmt(meta_path, ir.FieldRef("param.value"))],
                )
                self.out.actions[action.name] = action
                table = ir.Table(
                    name=f"{self.p}ctrl_{decl.name}_{pipe}",
                    keys=[],
                    actions=[action.name],
                    default_action=(action.name, [0]),
                    size=1,
                )
                self.out.tables[table.name] = table
                tables.append(table.name)
            self.out.control_tables[decl.name] = tables
            self.out.control_value_widths[decl.name] = [width]
            self.out.ingress_prologue.append(ir.ApplyTable(tables[0]))
            self.out.egress_prologue.append(ir.ApplyTable(tables[1]))

    def _build_hop_tables(self) -> None:
        """First/last-hop detection + switch id tables (edge switches)."""
        mark_first = ir.Action(
            name=self.out.mark_first_action, params=[],
            body=[ir.AssignStmt(f"meta.{self.out.first_hop_meta}",
                                ir.Const(1, 1))],
        )
        mark_last = ir.Action(
            name=self.out.mark_last_action, params=[],
            body=[ir.AssignStmt(f"meta.{self.out.last_hop_meta}",
                                ir.Const(1, 1))],
        )
        self.out.actions[mark_first.name] = mark_first
        self.out.actions[mark_last.name] = mark_last
        self.out.tables[self.out.inject_table] = ir.Table(
            name=self.out.inject_table,
            keys=[ir.TableKey("standard_metadata.ingress_port",
                              ir.MatchKind.EXACT)],
            actions=[mark_first.name],
            default_action=None,
            size=64,
        )
        self.out.tables[self.out.strip_table] = ir.Table(
            name=self.out.strip_table,
            keys=[ir.TableKey("standard_metadata.egress_port",
                              ir.MatchKind.EXACT)],
            actions=[mark_last.name],
            default_action=None,
            size=64,
        )
        self.out.ingress_prologue.append(ir.ApplyTable(self.out.inject_table))
        self.out.egress_prologue.append(ir.ApplyTable(self.out.strip_table))
        if "switch_id" in self.checked.used_builtins:
            set_id = ir.Action(
                name=self.out.set_switch_id_action, params=[("value", 32)],
                body=[ir.AssignStmt(f"meta.{self.out.switch_id_meta}",
                                    ir.FieldRef("param.value"))],
            )
            self.out.actions[set_id.name] = set_id
            self.out.tables[self.out.switch_id_table] = ir.Table(
                name=self.out.switch_id_table, keys=[], actions=[set_id.name],
                default_action=(set_id.name, [0]), size=1,
            )
            self.out.ingress_prologue.append(
                ir.ApplyTable(self.out.switch_id_table))
            self.out.egress_prologue.append(
                ir.ApplyTable(self.out.switch_id_table))

    # ==================================================================
    # Inject / strip
    # ==================================================================

    def _inject_body(self) -> List[ir.P4Stmt]:
        """First hop: make the hydra header valid and set tele defaults."""
        hydra = self.out.hydra_name
        body: List[ir.P4Stmt] = [
            ir.SetValid(hydra),
            ir.AssignStmt(f"hdr.{hydra}.{NEXT_ETH_TYPE_FIELD}",
                          ir.FieldRef("hdr.ethernet.eth_type")),
            ir.AssignStmt("hdr.ethernet.eth_type",
                          ir.Const(self.out.eth_type, 16)),
        ]
        if self.layout.uses_hop_count:
            body.append(ir.AssignStmt(f"hdr.{hydra}.{HOP_COUNT_FIELD}",
                                      ir.Const(0, 8)))
        for decl in self.program.decls_of_kind(ast.VarKind.TELE):
            if isinstance(decl.ty, (BitType, BoolType)):
                value = 0
                if decl.init is not None:
                    value = int(_eval_const(decl.init))
                width = scalar_width(decl.ty)
                body.append(ir.AssignStmt(
                    self.layout.field_path(decl.name),
                    ir.Const(value & ((1 << width) - 1), width),
                ))
            elif isinstance(decl.ty, ArrayType):
                entry = self.layout.array(decl.name)
                body.append(ir.AssignStmt(
                    self.layout.count_path(decl.name), ir.Const(0, 8)))
                for i in range(entry.capacity):
                    body.append(ir.AssignStmt(
                        self.layout.valid_path(decl.name, i), ir.Const(0, 1)))
                    body.append(ir.AssignStmt(
                        self.layout.slot_path(decl.name, i),
                        ir.Const(0, entry.elem_width)))
        return body

    def _strip_stmts(self) -> List[ir.P4Stmt]:
        """Last hop: restore the EtherType, drop the telemetry header,
        and enforce the reject verdict."""
        hydra = self.out.hydra_name
        return [
            ir.AssignStmt("hdr.ethernet.eth_type",
                          ir.FieldRef(f"hdr.{hydra}.{NEXT_ETH_TYPE_FIELD}")),
            ir.SetInvalid(hydra),
            ir.IfStmt(
                cond=ir.BinExpr("==",
                                ir.FieldRef(f"meta.{self.out.reject_meta}"),
                                ir.Const(1, 1)),
                then_body=[ir.MarkToDrop()],
            ),
        ]

    # ==================================================================
    # Statement translation
    # ==================================================================

    def _translate_body(self, stmts: List[ast.Stmt]) -> List[ir.P4Stmt]:
        out: List[ir.P4Stmt] = []
        for stmt in stmts:
            saved_pending = self._pending
            self._pending = []
            translated = self._stmt(stmt)
            # Table applies / register reads required by this statement's
            # expressions land immediately before it (Section 4.1); they
            # inherit the statement's source span.
            for emitted in self._pending:
                _tag_stmt(emitted, stmt.span)
            for emitted in translated:
                _tag_stmt(emitted, stmt.span)
            out.extend(self._pending)
            out.extend(translated)
            self._pending = saved_pending
        return out

    def _stmt(self, stmt: ast.Stmt) -> List[ir.P4Stmt]:
        if isinstance(stmt, ast.Pass):
            return []
        if isinstance(stmt, ast.Reject):
            return [ir.AssignStmt(f"meta.{self.out.reject_meta}",
                                  ir.Const(1, 1))]
        if isinstance(stmt, ast.Report):
            return self._stmt_report(stmt)
        if isinstance(stmt, ast.Assign):
            return self._stmt_assign(stmt.target, self._expr(stmt.value))
        if isinstance(stmt, ast.AugAssign):
            current = self._expr(stmt.target)
            width = stmt.target.ty.width \
                if isinstance(stmt.target.ty, BitType) else 32
            op = "+" if stmt.op is ast.BinaryOp.ADD else "-"
            value = ir.BinExpr(op, current, self._expr(stmt.value), width)
            return self._stmt_assign(stmt.target, value)
        if isinstance(stmt, ast.Push):
            return self._stmt_push(stmt)
        if isinstance(stmt, ast.If):
            return self._stmt_if(stmt)
        if isinstance(stmt, ast.For):
            return self._stmt_for(stmt)
        raise CompileError(f"cannot compile {type(stmt).__name__}", stmt.span)

    def _stmt_report(self, stmt: ast.Report) -> List[ir.P4Stmt]:
        self._report_counter += 1
        site = ReportSite(site_id=self._report_counter,
                          block=self._current_block)
        fields: List[ir.P4Expr] = [ir.Const(site.site_id, 32)]
        if stmt.payload is not None:
            site.has_payload = True
            for expr, width in self._flatten(stmt.payload):
                fields.append(expr)
                site.field_widths.append(width)
        self.out.report_sites[site.site_id] = site
        return [ir.Digest(self.out.report_digest, fields)]

    def _flatten(self, expr: ast.Expr) -> List[Tuple[ir.P4Expr, int]]:
        """Flatten a (possibly tuple) expression into scalar P4 exprs."""
        if isinstance(expr, ast.TupleExpr):
            out: List[Tuple[ir.P4Expr, int]] = []
            for item in expr.items:
                out.extend(self._flatten(item))
            return out
        ty = expr.ty
        if isinstance(ty, TupleType):
            raise CompileError(
                "tuple-valued variables cannot be flattened for reporting",
                expr.span,
            )
        width = scalar_width(ty) if ty is not None else 32
        return [(self._expr(expr), width)]

    def _stmt_assign(self, target: ast.Expr,
                     value: ir.P4Expr) -> List[ir.P4Stmt]:
        if isinstance(target, ast.Var):
            return self._assign_var(target.name, value)
        if isinstance(target, ast.Index):
            return self._assign_slot(target, value)
        raise CompileError("invalid assignment target", target.span)

    def _assign_var(self, name: str, value: ir.P4Expr) -> List[ir.P4Stmt]:
        decl = self.program.decl(name)
        if decl is None:
            raise CompileError(f"undeclared variable {name!r}")
        if decl.kind is ast.VarKind.TELE:
            return [ir.AssignStmt(self.layout.field_path(name), value)]
        if decl.kind is ast.VarKind.LOCAL:
            width = scalar_width(decl.ty)
            path = self._meta(f"{self.p}loc_{name}", width)
            return [ir.AssignStmt(path, value)]
        if decl.kind is ast.VarKind.SENSOR:
            scratch = f"meta.{self.p}sens_{name}"
            return [
                ir.AssignStmt(scratch, value),
                ir.RegisterWrite(f"{self.p}reg_{name}", ir.Const(0, 32),
                                 ir.FieldRef(scratch)),
            ]
        raise CompileError(f"{decl.kind.value} variable {name!r} is read-only")

    def _assign_slot(self, target: ast.Index,
                     value: ir.P4Expr) -> List[ir.P4Stmt]:
        if not isinstance(target.base, ast.Var):
            raise CompileError("nested array targets are not supported",
                               target.span)
        name = target.base.name
        sensor_decl = self._sensor_array_decl(name)
        if sensor_decl is not None:
            capacity = sensor_decl.ty.capacity
            index = self._expr(target.index)
            count = self._sensor_count_read(name)
            new_count = ir.BinExpr(
                "max", count, ir.BinExpr("+", index, ir.Const(1, 8), 8), 8)
            return [ir.IfStmt(
                cond=ir.BinExpr("<", index, ir.Const(capacity, 32)),
                then_body=[
                    ir.RegisterWrite(f"{self.p}reg_{name}", index, value),
                    ir.RegisterWrite(f"{self.p}reg_{name}_cnt",
                                     ir.Const(0, 32), new_count),
                ],
            )]
        decl = self.program.decl(name)
        if decl is None or decl.kind is not ast.VarKind.TELE or \
                not isinstance(decl.ty, ArrayType):
            raise CompileError(
                "indexed assignment requires a tele or sensor array",
                target.span,
            )
        entry = self.layout.array(name)
        count = ir.FieldRef(self.layout.count_path(name))
        if isinstance(target.index, ast.IntLit):
            i = target.index.value
            if i >= entry.capacity:
                return []  # out-of-range writes are dropped
            return [
                ir.AssignStmt(self.layout.slot_path(name, i), value),
                ir.AssignStmt(self.layout.valid_path(name, i), ir.Const(1, 1)),
                ir.AssignStmt(self.layout.count_path(name),
                              ir.BinExpr("max", count, ir.Const(i + 1, 8), 8)),
            ]
        index = self._expr(target.index)
        out: List[ir.P4Stmt] = []
        for i in range(entry.capacity):
            out.append(ir.IfStmt(
                cond=ir.BinExpr("==", index, ir.Const(i, 32)),
                then_body=[
                    ir.AssignStmt(self.layout.slot_path(name, i), value),
                    ir.AssignStmt(self.layout.valid_path(name, i),
                                  ir.Const(1, 1)),
                    ir.AssignStmt(self.layout.count_path(name),
                                  ir.BinExpr("max", count,
                                             ir.Const(i + 1, 8), 8)),
                ],
            ))
        return out

    def _stmt_push(self, stmt: ast.Push) -> List[ir.P4Stmt]:
        if not isinstance(stmt.target, ast.Var):
            raise CompileError("push target must be a named array",
                               stmt.span)
        name = stmt.target.name
        sensor_decl = self._sensor_array_decl(name)
        if sensor_decl is not None:
            return self._sensor_push(name, sensor_decl, stmt)
        decl = self.program.decl(name)
        if decl is None or decl.kind is not ast.VarKind.TELE:
            raise CompileError(
                "push is only supported on tele and sensor arrays by the "
                "P4 backend",
                stmt.span,
            )
        entry = self.layout.array(name)
        value = self._expr(stmt.value)
        count_path = self.layout.count_path(name)
        # Unrolled saturating append: an if/elsif chain over the cursor.
        chain: List[ir.P4Stmt] = []
        for i in reversed(range(entry.capacity)):
            inner: List[ir.P4Stmt] = [
                ir.AssignStmt(self.layout.slot_path(name, i), value),
                ir.AssignStmt(self.layout.valid_path(name, i), ir.Const(1, 1)),
                ir.AssignStmt(count_path, ir.Const(i + 1, 8)),
            ]
            chain = [ir.IfStmt(
                cond=ir.BinExpr("==", ir.FieldRef(count_path),
                                ir.Const(i, 8)),
                then_body=inner,
                else_body=chain,
            )]
        return chain

    def _sensor_push(self, name: str, decl: ast.Decl,
                     stmt: ast.Push) -> List[ir.P4Stmt]:
        """Saturating append to a sensor array's register bank."""
        capacity = decl.ty.capacity
        value = self._expr(stmt.value)
        count = self._sensor_count_read(name)
        bump = ir.BinExpr("+", count, ir.Const(1, 8), 8)
        return [ir.IfStmt(
            cond=ir.BinExpr("<", count, ir.Const(capacity, 8)),
            then_body=[
                ir.RegisterWrite(f"{self.p}reg_{name}", count, value),
                ir.RegisterWrite(f"{self.p}reg_{name}_cnt",
                                 ir.Const(0, 32), bump),
            ],
        )]

    def _stmt_if(self, stmt: ast.If) -> List[ir.P4Stmt]:
        result: List[ir.P4Stmt] = []
        tip = result
        for cond, body in stmt.arms:
            cond_expr = self._expr(cond)
            node = ir.IfStmt(cond=cond_expr,
                             then_body=self._translate_body(body))
            tip.append(node)
            tip = node.else_body
        for translated in self._translate_body(stmt.orelse):
            tip.append(translated)
        return result

    def _stmt_for(self, stmt: ast.For) -> List[ir.P4Stmt]:
        arrays: List[str] = []
        kinds: List[str] = []  # "tele" or "sensor"
        capacity: Optional[int] = None
        for iterable in stmt.iterables:
            if not isinstance(iterable, ast.Var):
                raise CompileError(
                    "for loops over expressions are not supported by the "
                    "P4 backend; iterate over a named array",
                    iterable.span,
                )
            name = iterable.name
            sensor_decl = self._sensor_array_decl(name)
            if sensor_decl is not None:
                arrays.append(name)
                kinds.append("sensor")
                capacity = sensor_decl.ty.capacity
                continue
            decl = self.program.decl(name)
            if decl is None or not isinstance(decl.ty, ArrayType) or \
                    decl.kind is not ast.VarKind.TELE:
                raise CompileError(
                    "for loops can only iterate over tele and sensor "
                    "arrays in the P4 backend",
                    iterable.span,
                )
            arrays.append(name)
            kinds.append("tele")
            capacity = self.layout.array(name).capacity
        assert capacity is not None
        # Cursor reads for sensor arrays happen once, before the
        # unrolled iterations.
        counts: Dict[str, ir.P4Expr] = {}
        for name, kind in zip(arrays, kinds):
            if kind == "sensor" and name not in counts:
                counts[name] = self._sensor_count_read(name)
        out: List[ir.P4Stmt] = []
        for i in range(capacity):
            guard: Optional[ir.P4Expr] = None
            slot_refs: Dict[str, ir.P4Expr] = {}
            prelude: List[ir.P4Stmt] = []
            for name, kind in zip(arrays, kinds):
                if kind == "tele":
                    term: ir.P4Expr = ir.BinExpr(
                        "==", ir.FieldRef(self.layout.valid_path(name, i)),
                        ir.Const(1, 1),
                    )
                    slot_refs[name] = ir.FieldRef(
                        self.layout.slot_path(name, i))
                else:
                    term = ir.BinExpr("<", ir.Const(i, 8), counts[name])
                    decl = self._sensor_array_decl(name)
                    elem_width = scalar_width(decl.ty.element)
                    self._site_counter += 1
                    scratch = self._meta(
                        f"{self.p}sarr_{name}_{self._site_counter}",
                        elem_width)
                    prelude.append(ir.RegisterRead(
                        scratch, f"{self.p}reg_{name}", ir.Const(i, 32)))
                    slot_refs[name] = ir.FieldRef(scratch)
                guard = term if guard is None else \
                    ir.BinExpr("&&", guard, term)
            saved = dict(self._loop_env)
            for var_name, array_name in zip(stmt.names, arrays):
                self._loop_env[var_name] = slot_refs[array_name]
            try:
                body = self._translate_body(stmt.body)
            finally:
                self._loop_env = saved
            assert guard is not None
            out.append(ir.IfStmt(cond=guard, then_body=prelude + body))
        return out

    # ==================================================================
    # Expression translation
    # ==================================================================

    def _expr(self, expr: ast.Expr) -> ir.P4Expr:
        return _tag_expr(self._expr_lowered(expr), expr.span)

    def _expr_lowered(self, expr: ast.Expr) -> ir.P4Expr:
        if isinstance(expr, ast.IntLit):
            width = expr.ty.width if isinstance(expr.ty, BitType) else 32
            return ir.Const(expr.value, width)
        if isinstance(expr, ast.BoolLit):
            return ir.Const(1 if expr.value else 0, 1)
        if isinstance(expr, ast.Var):
            return self._expr_var(expr)
        if isinstance(expr, ast.Unary):
            op = {"!": "!", "~": "~", "-": "-"}[expr.op.value]
            width = expr.ty.width if isinstance(expr.ty, BitType) else 32
            operand = self._expr(expr.operand)
            if op == "-":
                return ir.BinExpr("-", ir.Const(0, width), operand, width)
            if op == "~":
                return ir.UnExpr(op, operand, width)
            return ir.UnExpr(op, operand)  # '!' is width-free (boolean)
        if isinstance(expr, ast.Binary):
            return self._expr_binary(expr)
        if isinstance(expr, ast.Index):
            return self._expr_index(expr)
        if isinstance(expr, ast.InExpr):
            return self._expr_in(expr)
        if isinstance(expr, ast.Call):
            return self._expr_call(expr)
        if isinstance(expr, ast.TupleExpr):
            raise CompileError(
                "tuple expressions are only allowed as dictionary keys and "
                "report payloads",
                expr.span,
            )
        raise CompileError(f"cannot compile {type(expr).__name__}", expr.span)

    def _expr_var(self, expr: ast.Var) -> ir.P4Expr:
        name = expr.name
        if name in self._loop_env:
            return self._loop_env[name]
        decl = self.program.decl(name)
        if decl is None:
            return self._expr_builtin(name, expr)
        kind = decl.kind
        if kind is ast.VarKind.TELE:
            if isinstance(decl.ty, ArrayType):
                raise CompileError(
                    f"array {name!r} cannot be used as a scalar", expr.span
                )
            return ir.FieldRef(self.layout.field_path(name))
        if kind is ast.VarKind.LOCAL:
            width = scalar_width(decl.ty)
            return ir.FieldRef(self._meta(f"{self.p}loc_{name}", width))
        if kind is ast.VarKind.SENSOR:
            scratch = f"meta.{self.p}sens_{name}"
            self._pending.append(
                ir.RegisterRead(scratch, f"{self.p}reg_{name}",
                                ir.Const(0, 32))
            )
            return ir.FieldRef(scratch)
        if kind is ast.VarKind.CONTROL:
            if isinstance(decl.ty, (DictType, SetType)):
                raise CompileError(
                    f"control {name!r} must be used via lookup or 'in'",
                    expr.span,
                )
            return ir.FieldRef(f"meta.{self.p}ctrlval_{name}")
        if kind is ast.VarKind.HEADER:
            return self._expr_header(decl, expr)
        raise CompileError(f"cannot read {name!r}", expr.span)

    def _expr_builtin(self, name: str, expr: ast.Expr) -> ir.P4Expr:
        if name == "first_hop":
            return ir.BinExpr("==",
                              ir.FieldRef(f"meta.{self.out.first_hop_meta}"),
                              ir.Const(1, 1))
        if name == "last_hop":
            return ir.BinExpr("==",
                              ir.FieldRef(f"meta.{self.out.last_hop_meta}"),
                              ir.Const(1, 1))
        if name == "packet_length":
            return ir.FieldRef("standard_metadata.packet_length")
        if name == "hop_count":
            return ir.FieldRef(f"hdr.{self.out.hydra_name}.{HOP_COUNT_FIELD}")
        if name == "switch_id":
            return ir.FieldRef(f"meta.{self.out.switch_id_meta}")
        raise CompileError(f"undeclared variable {name!r}", expr.span)

    def _expr_header(self, decl: ast.Decl, expr: ast.Var) -> ir.P4Expr:
        binding = decl.annotation or self.bindings.get(decl.name)
        if binding is None:
            raise CompileError(
                f"header variable {decl.name!r} has no @ annotation and no "
                "default binding; supply one via the compiler's bindings map",
                expr.span,
            )
        # "<bind>_is_valid" exposes header validity as a bool.
        if binding.endswith(VALID_SUFFIX):
            return ir.ValidRef(binding[: -len(VALID_SUFFIX)])
        if not binding.startswith(("hdr.", "meta.", "standard_metadata.")):
            binding = "hdr." + binding
        return ir.FieldRef(binding)

    def _expr_binary(self, expr: ast.Binary) -> ir.P4Expr:
        op = expr.op
        left_ty = expr.left.ty
        # Tuple equality flattens into a conjunction.
        if op in (ast.BinaryOp.EQ, ast.BinaryOp.NEQ) and \
                isinstance(left_ty, TupleType):
            lefts = self._flatten(expr.left)
            rights = self._flatten(expr.right)
            conj: Optional[ir.P4Expr] = None
            for (le, _), (re, _) in zip(lefts, rights):
                term = ir.BinExpr("==", le, re)
                conj = term if conj is None else ir.BinExpr("&&", conj, term)
            assert conj is not None
            return ir.UnExpr("!", conj) if op is ast.BinaryOp.NEQ else conj
        width = expr.ty.width if isinstance(expr.ty, BitType) else 32
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        return ir.BinExpr(op.value, left, right, width)

    def _expr_index(self, expr: ast.Index) -> ir.P4Expr:
        base_ty = expr.base.ty
        if isinstance(base_ty, DictType):
            return self._dict_lookup(expr)
        if isinstance(base_ty, ArrayType):
            return self._array_read(expr)
        raise CompileError(f"cannot index {base_ty}", expr.span)

    def _array_read(self, expr: ast.Index) -> ir.P4Expr:
        if not isinstance(expr.base, ast.Var):
            raise CompileError("nested array reads are not supported",
                               expr.span)
        name = expr.base.name
        sensor_decl = self._sensor_array_decl(name)
        if sensor_decl is not None:
            # Registers support dynamic indexing natively.
            elem_width = scalar_width(sensor_decl.ty.element)
            self._site_counter += 1
            scratch = self._meta(
                f"{self.p}sarr_{name}_{self._site_counter}", elem_width)
            self._pending.append(ir.RegisterRead(
                scratch, f"{self.p}reg_{name}", self._expr(expr.index)))
            return ir.FieldRef(scratch)
        entry = self.layout.array(name)
        if isinstance(expr.index, ast.IntLit):
            i = expr.index.value
            if i >= entry.capacity:
                return ir.Const(0, entry.elem_width)
            return ir.FieldRef(self.layout.slot_path(name, i))
        # Dynamic index: select into a scratch field with an if-chain.
        self._site_counter += 1
        scratch = self._meta(f"{self.p}arr_{self._site_counter}",
                             entry.elem_width)
        index = self._expr(expr.index)
        self._pending.append(ir.AssignStmt(scratch,
                                           ir.Const(0, entry.elem_width)))
        for i in range(entry.capacity):
            self._pending.append(ir.IfStmt(
                cond=ir.BinExpr("==", index, ir.Const(i, 32)),
                then_body=[ir.AssignStmt(
                    scratch, ir.FieldRef(self.layout.slot_path(name, i)))],
            ))
        return ir.FieldRef(scratch)

    def _expr_in(self, expr: ast.InExpr) -> ir.P4Expr:
        container_ty = expr.container.ty
        if isinstance(container_ty, SetType) and \
                isinstance(expr.container, ast.Var) and \
                self._is_control(expr.container.name):
            return self._set_membership(expr)
        if isinstance(container_ty, ArrayType) and \
                isinstance(expr.container, ast.Var) and \
                self._sensor_array_decl(expr.container.name) is not None:
            return self._sensor_in(expr)
        if isinstance(container_ty, ArrayType) and \
                isinstance(expr.container, ast.Var):
            name = expr.container.name
            entry = self.layout.array(name)
            item = self._expr(expr.item)
            result: Optional[ir.P4Expr] = None
            for i in range(entry.capacity):
                term = ir.BinExpr(
                    "&&",
                    ir.BinExpr("==",
                               ir.FieldRef(self.layout.valid_path(name, i)),
                               ir.Const(1, 1)),
                    ir.BinExpr("==", item,
                               ir.FieldRef(self.layout.slot_path(name, i))),
                )
                result = term if result is None else \
                    ir.BinExpr("||", result, term)
            return result if result is not None else ir.Const(0, 1)
        raise CompileError(
            "'in' is supported over control sets and tele arrays", expr.span
        )

    def _sensor_in(self, expr: ast.InExpr) -> ir.P4Expr:
        """Membership over a sensor array: per-slot register reads
        guarded by the push cursor."""
        assert isinstance(expr.container, ast.Var)
        name = expr.container.name
        decl = self._sensor_array_decl(name)
        assert decl is not None
        elem_width = scalar_width(decl.ty.element)
        item = self._expr(expr.item)
        count = self._sensor_count_read(name)
        result: Optional[ir.P4Expr] = None
        for i in range(decl.ty.capacity):
            self._site_counter += 1
            scratch = self._meta(
                f"{self.p}sarr_{name}_{self._site_counter}", elem_width)
            self._pending.append(ir.RegisterRead(
                scratch, f"{self.p}reg_{name}", ir.Const(i, 32)))
            term = ir.BinExpr(
                "&&",
                ir.BinExpr("<", ir.Const(i, 8), count),
                ir.BinExpr("==", item, ir.FieldRef(scratch)),
            )
            result = term if result is None else \
                ir.BinExpr("||", result, term)
        return result if result is not None else ir.Const(0, 1)

    def _is_control(self, name: str) -> bool:
        decl = self.program.decl(name)
        return decl is not None and decl.kind is ast.VarKind.CONTROL

    def _expr_call(self, expr: ast.Call) -> ir.P4Expr:
        if expr.func == "abs":
            arg = expr.args[0]
            width = arg.ty.width if isinstance(arg.ty, BitType) else 32
            if isinstance(arg, ast.Binary) and arg.op is ast.BinaryOp.SUB:
                return ir.BinExpr("absdiff", self._expr(arg.left),
                                  self._expr(arg.right), width)
            return ir.BinExpr("absdiff", self._expr(arg),
                              ir.Const(0, width), width)
        if expr.func == "length":
            target = expr.args[0]
            if isinstance(target, ast.Var):
                if target.name in self.layout.arrays:
                    return ir.FieldRef(self.layout.count_path(target.name))
                if self._sensor_array_decl(target.name) is not None:
                    return self._sensor_count_read(target.name)
            raise CompileError("length() requires a tele or sensor array",
                               expr.span)
        if expr.func in ("max", "min"):
            width = expr.ty.width if isinstance(expr.ty, BitType) else 32
            return ir.BinExpr(expr.func, self._expr(expr.args[0]),
                              self._expr(expr.args[1]), width)
        raise CompileError(f"unknown function {expr.func!r}", expr.span)

    # ==================================================================
    # Control dictionary / set lookups
    # ==================================================================

    def _key_parts(self, key: ast.Expr) -> List[Tuple[ast.Expr, int]]:
        if isinstance(key, ast.TupleExpr):
            parts: List[Tuple[ast.Expr, int]] = []
            for item in key.items:
                parts.extend(self._key_parts(item))
            return parts
        width = scalar_width(key.ty) if key.ty is not None else 32
        return [(key, width)]

    def _dict_lookup(self, expr: ast.Index) -> ir.P4Expr:
        """A dictionary lookup becomes a fresh match-action table applied
        immediately before the statement containing the lookup."""
        assert isinstance(expr.base, ast.Var)
        name = expr.base.name
        decl = self.program.decl(name)
        assert decl is not None and isinstance(decl.ty, DictType)
        value_width = scalar_width(decl.ty.value)
        self._site_counter += 1
        site = self._site_counter
        value_meta = self._meta(f"{self.p}{name}_v{site}", value_width)
        key_paths: List[str] = []
        for i, (part, width) in enumerate(self._key_parts(expr.index)):
            key_meta = self._meta(f"{self.p}{name}_k{site}_{i}", width)
            self._pending.append(ir.AssignStmt(key_meta, self._expr(part)))
            key_paths.append(key_meta)
        hit = ir.Action(
            name=f"{self.p}{name}_set{site}", params=[("value", value_width)],
            body=[ir.AssignStmt(value_meta, ir.FieldRef("param.value"))],
        )
        miss = ir.Action(
            name=f"{self.p}{name}_miss{site}", params=[],
            body=[ir.AssignStmt(value_meta, ir.Const(0, value_width))],
        )
        self.out.actions[hit.name] = hit
        self.out.actions[miss.name] = miss
        # Range matching lets the control plane install wildcard, prefix,
        # and port-range entries (exact lookups install [v, v] ranges),
        # which the Aether filtering rules require.
        table = ir.Table(
            name=f"{self.p}{name}_tbl{site}",
            keys=[ir.TableKey(path, ir.MatchKind.RANGE) for path in key_paths],
            actions=[hit.name],
            default_action=(miss.name, []),
            size=1024,
        )
        self.out.tables[table.name] = table
        self.out.control_tables.setdefault(name, []).append(table.name)
        self.out.control_value_widths[name] = [value_width]
        self._pending.append(ir.ApplyTable(table.name))
        return ir.FieldRef(value_meta)

    def _set_membership(self, expr: ast.InExpr) -> ir.P4Expr:
        assert isinstance(expr.container, ast.Var)
        name = expr.container.name
        self._site_counter += 1
        site = self._site_counter
        flag_meta = self._meta(f"{self.p}{name}_m{site}", 1)
        key_paths: List[str] = []
        for i, (part, width) in enumerate(self._key_parts(expr.item)):
            key_meta = self._meta(f"{self.p}{name}_k{site}_{i}", width)
            self._pending.append(ir.AssignStmt(key_meta, self._expr(part)))
            key_paths.append(key_meta)
        hit = ir.Action(
            name=f"{self.p}{name}_hit{site}", params=[],
            body=[ir.AssignStmt(flag_meta, ir.Const(1, 1))],
        )
        miss = ir.Action(
            name=f"{self.p}{name}_nohit{site}", params=[],
            body=[ir.AssignStmt(flag_meta, ir.Const(0, 1))],
        )
        self.out.actions[hit.name] = hit
        self.out.actions[miss.name] = miss
        table = ir.Table(
            name=f"{self.p}{name}_tbl{site}",
            keys=[ir.TableKey(path, ir.MatchKind.RANGE) for path in key_paths],
            actions=[hit.name],
            default_action=(miss.name, []),
            size=1024,
        )
        self.out.tables[table.name] = table
        self.out.control_tables.setdefault(name, []).append(table.name)
        self.out.control_value_widths[name] = []
        self._pending.append(ir.ApplyTable(table.name))
        return ir.BinExpr("==", ir.FieldRef(flag_meta), ir.Const(1, 1))


def compile_program(source_or_checked, name: str = "checker",
                    bindings: Optional[Dict[str, str]] = None,
                    namespace: str = "",
                    eth_type: int = ETH_TYPE_HYDRA,
                    optimize: bool = False) -> CompiledChecker:
    """Compile Indus source text (or an already-checked program) to P4 IR.

    ``optimize=True`` additionally runs the dataflow optimizer
    (:func:`repro.analysis.optimize.optimize_compiled`): constant
    folding, liveness-driven dead-code/table/register elimination, and
    scratch-field coalescing — behaviorally identical by construction
    and validated against the differential oracle.
    """
    if isinstance(source_or_checked, str):
        checked = check(parse(source_or_checked))
    elif isinstance(source_or_checked, CheckedProgram):
        checked = source_or_checked
    else:
        raise TypeError("expected Indus source text or a CheckedProgram")
    compiled = IndusCompiler(checked, name=name, bindings=bindings,
                             namespace=namespace, eth_type=eth_type).compile()
    if optimize:
        from ..analysis.optimize import optimize_compiled
        optimize_compiled(compiled)
    return compiled
