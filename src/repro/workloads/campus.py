"""Synthetic campus-traffic generation.

Stands in for the Princeton P4Campus mirror (two tapped /16 subnets,
~350K packets/s after anonymization).  The generator produces a
flow-structured, heavy-tailed packet stream with an IMIX-like size
distribution, deterministic under a seed, which the throughput
microbenchmark replays toward leaf1 exactly as the paper replays the
mirrored trace.

Generation is fully lazy: :meth:`CampusTraceGenerator.timed_packets`
draws packets one at a time for as long as the exponential arrival
clock stays inside ``duration_s``, so paper-rate traces (hundreds of
thousands of packets per simulated second) are never materialized and
an unlucky inter-arrival tail can never exhaust a pre-sized stream
early (which used to silently under-offer load).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.packet import (IP_PROTO_TCP, IP_PROTO_UDP, Packet, ip, make_tcp,
                          make_udp)

# The two tapped campus subnets (stand-ins for the paper's two /16s).
CAMPUS_SUBNET_A = ip(128, 112, 0, 0)   # /16
CAMPUS_SUBNET_B = ip(140, 180, 0, 0)   # /16

# IMIX-ish packet sizes and weights.
_PACKET_SIZES = (64, 576, 1500)
_SIZE_WEIGHTS = (0.55, 0.25, 0.20)
# Pre-accumulated weights so the hot path can use bisect directly; the
# expressions mirror random.choices (cum_weights via accumulate, then
# bisect(cum, random() * (cum[-1] + 0.0), 0, n - 1)) so the draws are
# bit-identical to the historical rng.choices call for any seed.
_SIZE_CUM = tuple(accumulate(_SIZE_WEIGHTS))
_SIZE_TOTAL = _SIZE_CUM[-1] + 0.0
_SIZE_HI = len(_PACKET_SIZES) - 1


@dataclass
class Flow:
    """One generated flow: a 5-tuple plus remaining packets."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int
    remaining: int


@dataclass
class TraceStats:
    packets: int = 0
    bytes: int = 0
    tcp_packets: int = 0
    udp_packets: int = 0
    flows: int = 0


class CampusTraceGenerator:
    """Deterministic synthetic campus trace.

    Flow sizes follow a bounded Pareto (heavy tail); 80% of flows are
    TCP.  Sources come from the two campus /16s, destinations from a
    synthetic "rest of the Internet" pool.

    With ``reuse_packets=True`` the generator hands out one shared
    :class:`Packet` template per (flow, size) pair instead of building
    a fresh packet each draw — the RNG sequence (and therefore the
    trace) is unchanged, but consumers must treat packets as immutable
    templates (the batched replay path does; it never mutates its
    inputs).
    """

    def __init__(self, seed: int = 2023, mean_flow_packets: float = 12.0,
                 max_flow_packets: int = 10_000,
                 reuse_packets: bool = False):
        self.rng = random.Random(seed)
        self.mean_flow_packets = mean_flow_packets
        self.max_flow_packets = max_flow_packets
        self.reuse_packets = reuse_packets
        self._templates: Dict[tuple, Packet] = {}
        self.stats = TraceStats()

    def _new_flow(self) -> Flow:
        rng = self.rng
        subnet = CAMPUS_SUBNET_A if rng.random() < 0.5 else CAMPUS_SUBNET_B
        src = subnet | rng.randrange(1, 1 << 16)
        dst = ip(93, 184, 0, 0) | rng.randrange(1, 1 << 16)
        proto = IP_PROTO_TCP if rng.random() < 0.8 else IP_PROTO_UDP
        sport = rng.randrange(1024, 65535)
        dport = rng.choice((80, 443, 53, 123, 8080, 3478))
        # Bounded Pareto flow length, shape ~1.2 (heavy tail).
        size = int(rng.paretovariate(1.2))
        size = max(1, min(size, self.max_flow_packets))
        self.stats.flows += 1
        return Flow(src, dst, sport, dport, proto, size)

    def _packet_for(self, flow: Flow) -> Packet:
        size = _PACKET_SIZES[bisect_right(
            _SIZE_CUM, self.rng.random() * _SIZE_TOTAL, 0, _SIZE_HI)]
        if self.reuse_packets:
            key = (flow.src, flow.dst, flow.sport, flow.dport, flow.proto,
                   size)
            entry = self._templates.get(key)
            if entry is None:
                packet = self._build_packet(flow, size)
                self._templates[key] = (packet, packet.length)
                return packet
            packet, length = entry
            self._count_packet(flow, length)
            return packet
        return self._build_packet(flow, size)

    def _build_packet(self, flow: Flow, size: int) -> Packet:
        payload = max(0, size - 54)
        if flow.proto == IP_PROTO_TCP:
            packet = make_tcp(flow.src, flow.dst, flow.sport, flow.dport,
                              payload_len=payload)
        else:
            packet = make_udp(flow.src, flow.dst, flow.sport, flow.dport,
                              payload_len=payload)
        packet.meta["flow_id"] = (flow.src, flow.dst, flow.sport,
                                  flow.dport, flow.proto)
        self._count_packet(flow, packet.length)
        return packet

    def _count_packet(self, flow: Flow, length: int) -> None:
        if flow.proto == IP_PROTO_TCP:
            self.stats.tcp_packets += 1
        else:
            self.stats.udp_packets += 1
        self.stats.packets += 1
        self.stats.bytes += length

    def packets(self, count: Optional[int] = None,
                concurrent_flows: int = 64) -> Iterator[Packet]:
        """Yield ``count`` packets (unbounded when ``count=None``),
        interleaving concurrent flows."""
        active: List[Flow] = [self._new_flow()
                              for _ in range(concurrent_flows)]
        produced = 0
        while count is None or produced < count:
            index = self.rng.randrange(len(active))
            flow = active[index]
            yield self._packet_for(flow)
            produced += 1
            flow.remaining -= 1
            if flow.remaining <= 0:
                active[index] = self._new_flow()

    def timed_packets(self, rate_pps: float, duration_s: float,
                      concurrent_flows: int = 64
                      ) -> Iterator[Tuple[float, Packet]]:
        """(timestamp, packet) pairs with exponential inter-arrivals at
        an average of ``rate_pps`` packets per second.

        The underlying packet stream is unbounded, so the emitted trace
        always covers the full ``duration_s`` no matter how the
        inter-arrival draws fall.
        """
        now = 0.0
        stream = self.packets(None, concurrent_flows)
        for packet in stream:
            now += self.rng.expovariate(rate_pps)
            if now > duration_s:
                return
            yield now, packet
