"""Traffic processes for the Figure 12 experiment: an iperf3-style UDP
load generator and a fast-ping RTT probe."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..net.packet import Packet, make_udp
from ..net.simulator import Network

ECHO_PORT = 7        # the classic echo service
LOAD_PORT = 5201     # iperf3's default


class UdpLoadGenerator:
    """Bidirectional UDP load between two hosts (iperf3 stand-in).

    Sends fixed-size datagrams at an average of ``rate_bps`` in each
    direction; inter-packet gaps are jittered (exponential) so queues
    see bursts rather than a perfectly paced stream.
    """

    def __init__(self, network: Network, host_a: str, host_b: str,
                 rate_bps: float, packet_len: int = 1400,
                 seed: int = 7, jitter: bool = True,
                 burst_size: int = 8):
        self.network = network
        self.host_a = host_a
        self.host_b = host_b
        self.rate_bps = rate_bps
        self.packet_len = packet_len
        self.rng = random.Random(seed)
        self.jitter = jitter
        # Real traffic is bursty (TCP windows, application batching):
        # packets leave back-to-back in trains of up to ``burst_size``
        # with exponential gaps between trains, which is what makes
        # queueing delay — and therefore RTT — noisy.
        self.burst_size = max(1, burst_size)
        self.packets_sent = 0

    def schedule(self, duration_s: float) -> int:
        """Schedule the whole load ahead of time; returns packet count."""
        a = self.network.topology.hosts[self.host_a]
        b = self.network.topology.hosts[self.host_b]
        gap = (self.packet_len * 8) / self.rate_bps
        count = 0
        for src, dst in ((a, b), (b, a)):
            now = 0.0
            sport = self.rng.randrange(30000, 60000)
            while now <= duration_s:
                if self.jitter:
                    burst = self.rng.randint(1, self.burst_size)
                    delta = self.rng.expovariate(1.0 / (gap * burst))
                else:
                    burst = 1
                    delta = gap
                now += delta
                if now > duration_s:
                    break
                for _ in range(burst):
                    packet = make_udp(src.ipv4, dst.ipv4, sport, LOAD_PORT,
                                      payload_len=self.packet_len)
                    src_host = self.host_a if src is a else self.host_b
                    self.network.host(src_host).send(packet, delay=now)
                    count += 1
        self.packets_sent = count
        return count

    def attach(self, duration_s: float) -> None:
        """Attach the same load lazily via ``Network.attach_source``.

        Emission times and packet sizes are drawn exactly as in
        :meth:`schedule` (one RNG stream per direction, in the same
        direction order), but each direction reuses one template packet
        per emission instead of building a fresh one, and nothing is
        materialized ahead of time — suitable for paper-rate loads.
        ``packets_sent`` counts emissions as they are offered.
        """
        a = self.network.topology.hosts[self.host_a]
        b = self.network.topology.hosts[self.host_b]
        gap = (self.packet_len * 8) / self.rate_bps
        for src, dst in ((a, b), (b, a)):
            src_host = self.host_a if src is a else self.host_b
            sport = self.rng.randrange(30000, 60000)
            # Per-direction RNG forked deterministically from the shared
            # stream so the two lazy directions cannot interleave draws.
            rng = random.Random(self.rng.randrange(1 << 30))
            template = make_udp(src.ipv4, dst.ipv4, sport, LOAD_PORT,
                                payload_len=self.packet_len)

            def emissions(rng: random.Random = rng,
                          template: Packet = template):
                now = 0.0
                while True:
                    if self.jitter:
                        burst = rng.randint(1, self.burst_size)
                        delta = rng.expovariate(1.0 / (gap * burst))
                    else:
                        burst = 1
                        delta = gap
                    now += delta
                    if now > duration_s:
                        return
                    for _ in range(burst):
                        self.packets_sent += 1
                        yield now, template

            self.network.attach_source(src_host, emissions())


@dataclass
class RttSample:
    send_time: float
    rtt_s: float
    seq: int


class EchoResponder:
    """Replies to echo requests by swapping addresses and ports."""

    def __init__(self, network: Network, host: str):
        self.network = network
        self.host = host
        self.replies = 0
        network.host(host).add_rx_callback(self._on_packet)

    def _on_packet(self, now: float, packet: Packet) -> None:
        udp = packet.find("udp")
        ipv4 = packet.find("ipv4")
        if udp is None or ipv4 is None or udp.dst_port != ECHO_PORT:
            return
        reply = make_udp(ipv4.dst_addr, ipv4.src_addr,
                         ECHO_PORT, udp.src_port,
                         payload_len=packet.payload_len)
        reply.meta["echo_seq"] = packet.meta.get("echo_seq")
        self.replies += 1
        self.network.host(self.host).send(reply)


class Pinger:
    """Sends an echo request every ``interval_s`` and records RTTs."""

    def __init__(self, network: Network, src_host: str, dst_host: str,
                 interval_s: float = 0.2, payload_len: int = 56):
        self.network = network
        self.src_host = src_host
        self.dst_host = dst_host
        self.interval_s = interval_s
        self.payload_len = payload_len
        self.samples: List[RttSample] = []
        self._sent: dict = {}
        self._seq = 0
        network.host(src_host).add_rx_callback(self._on_packet)

    def schedule(self, duration_s: float) -> int:
        """Schedule pings for the whole experiment; returns count."""
        src = self.network.topology.hosts[self.src_host]
        dst = self.network.topology.hosts[self.dst_host]
        # Multiply rather than accumulate so float drift cannot drop the
        # final tick.
        total = int(round(duration_s / self.interval_s))
        for k in range(1, total + 1):
            when = k * self.interval_s
            self._seq += 1
            seq = self._seq
            packet = make_udp(src.ipv4, dst.ipv4, 40000 + (seq % 1000),
                              ECHO_PORT, payload_len=self.payload_len)
            packet.meta["echo_seq"] = seq

            def send(pkt: Packet = packet, s: int = seq) -> None:
                self._sent[s] = self.network.sim.now
                self.network.transmit_from_host(self.src_host, pkt)

            self.network.sim.schedule(when, send)
        return total

    def _on_packet(self, now: float, packet: Packet) -> None:
        seq = packet.meta.get("echo_seq")
        udp = packet.find("udp")
        if seq is None or udp is None or udp.src_port != ECHO_PORT:
            return
        sent_at = self._sent.pop(seq, None)
        if sent_at is None:
            return
        self.samples.append(RttSample(send_time=sent_at,
                                      rtt_s=now - sent_at, seq=seq))

    @property
    def rtts_ms(self) -> List[float]:
        return [s.rtt_s * 1e3 for s in self.samples]

    def series(self) -> List[Tuple[float, float]]:
        """(send time s, RTT ms) pairs — the Figure 12a series."""
        return [(s.send_time, s.rtt_s * 1e3) for s in self.samples]
