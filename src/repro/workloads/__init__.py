"""Workloads: synthetic campus traces, prefix-preserving anonymization,
and the iperf/ping traffic processes of the Figure 12 experiment."""

from .anonymizer import PrefixPreservingAnonymizer
from .campus import (CAMPUS_SUBNET_A, CAMPUS_SUBNET_B, CampusTraceGenerator,
                     Flow, TraceStats)
from .traffic import (ECHO_PORT, EchoResponder, LOAD_PORT, Pinger, RttSample,
                      UdpLoadGenerator)

__all__ = [
    "CAMPUS_SUBNET_A", "CAMPUS_SUBNET_B", "CampusTraceGenerator",
    "ECHO_PORT", "EchoResponder", "Flow", "LOAD_PORT", "Pinger",
    "PrefixPreservingAnonymizer", "RttSample", "TraceStats",
    "UdpLoadGenerator",
]
