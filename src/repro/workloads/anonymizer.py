"""Prefix-preserving traffic anonymization (the paper's ONTAS step).

The campus traffic feeding the Figure 12/13 evaluation was anonymized at
line rate by a P4 program that hashes personally identifiable
information (MAC and IP addresses) in a prefix-preserving manner using a
one-way salted hash, discarding payloads.  This module reimplements that
sanitization for our synthetic traces.

Prefix preservation (Crypto-PAn style): bit i of the anonymized address
is the original bit XOR a pseudo-random function of the original i-bit
prefix.  Two addresses sharing a k-bit prefix therefore share exactly a
k-bit anonymized prefix, so subnet structure (and LPM routing behaviour)
survives anonymization.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from ..net.packet import Packet


class PrefixPreservingAnonymizer:
    """One-way, salted, prefix-preserving anonymization of addresses."""

    def __init__(self, salt: bytes = b"hydra-p4campus"):
        self.salt = salt
        self._cache: Dict[int, int] = {}
        self._mac_cache: Dict[int, int] = {}

    def _prf_bit(self, prefix_bits: int, length: int) -> int:
        digest = hashlib.sha256(
            self.salt + length.to_bytes(1, "big")
            + prefix_bits.to_bytes(5, "big")
        ).digest()
        return digest[0] & 1

    def anonymize_ipv4(self, addr: int) -> int:
        """Prefix-preserving anonymization of one IPv4 address."""
        cached = self._cache.get(addr)
        if cached is not None:
            return cached
        out = 0
        for i in range(32):
            original_bit = (addr >> (31 - i)) & 1
            prefix = addr >> (32 - i) if i else 0
            flip = self._prf_bit(prefix, i)
            out = (out << 1) | (original_bit ^ flip)
        self._cache[addr] = out
        return out

    def anonymize_mac(self, mac: int) -> int:
        """Hash a MAC address (one-way, salted; OUI not preserved)."""
        cached = self._mac_cache.get(mac)
        if cached is not None:
            return cached
        digest = hashlib.sha256(self.salt + mac.to_bytes(6, "big")).digest()
        out = int.from_bytes(digest[:6], "big")
        # Keep it a locally administered unicast address.
        out = (out | 0x020000000000) & ~0x010000000000
        self._mac_cache[mac] = out
        return out

    def anonymize_packet(self, packet: Packet) -> Packet:
        """Anonymize addresses in-place conventions of the paper:
        IP and MAC addresses hashed, payload discarded (packets carry
        only lengths in this substrate, so payloads are already gone)."""
        out = packet.copy()
        for header in out.headers:
            if header.name == "ipv4":
                header.src_addr = self.anonymize_ipv4(header.src_addr)
                header.dst_addr = self.anonymize_ipv4(header.dst_addr)
            elif header.name == "ethernet":
                header.src_addr = self.anonymize_mac(header.src_addr)
                header.dst_addr = self.anonymize_mac(header.dst_addr)
        out.meta.pop("flow_id", None)
        return out

    def shares_prefix(self, a: int, b: int) -> int:
        """Length of the common prefix of two addresses (helper)."""
        for i in range(32, -1, -1):
            if i == 0 or (a >> (32 - i)) == (b >> (32 - i)):
                return i
        return 0
